package asm

import (
	"strings"
	"testing"

	"mesa/internal/isa"
)

// Program() must reject instructions the machine cannot encode instead of
// letting them flow downstream (where they previously surfaced as panics in
// MustEncode). These are exactly the shapes a program generator produces.
func TestProgramRejectsOutOfRangeImmediates(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
		want  string
	}{
		{"addi too large", func(b *Builder) {
			b.ADDI(isa.RegT0, isa.RegT0, 2048) // 12-bit signed max is 2047
			b.ECALL()
		}, "out of 12-bit range"},
		{"addi too small", func(b *Builder) {
			b.ADDI(isa.RegT0, isa.RegT0, -2049)
			b.ECALL()
		}, "out of 12-bit range"},
		{"load offset", func(b *Builder) {
			b.LW(isa.RegA0, 4096, isa.RegA1)
			b.ECALL()
		}, "out of 12-bit range"},
		{"store offset", func(b *Builder) {
			b.SW(isa.RegA0, -2100, isa.RegA1)
			b.ECALL()
		}, "out of 12-bit range"},
		{"branch span overflow", func(b *Builder) {
			// A backward branch spanning > 4 KiB exceeds the 13-bit B-type
			// immediate; this is how oversized fuzz-generated loops fail.
			b.Label("loop")
			for i := 0; i < 1100; i++ {
				b.NOP()
			}
			b.BNE(isa.RegT0, isa.RegT1, "loop")
			b.ECALL()
		}, "out of 13-bit range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := NewBuilder(0x1000)
			c.build(b)
			p, err := b.Program()
			if err == nil {
				t.Fatalf("Program() accepted unencodable instruction, got %d insts", len(p.Insts))
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Program() error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestProgramAcceptsBoundaryImmediates(t *testing.T) {
	b := NewBuilder(0x1000)
	b.ADDI(isa.RegT0, isa.RegT0, 2047)
	b.ADDI(isa.RegT0, isa.RegT0, -2048)
	b.LW(isa.RegA0, 2047, isa.RegA1)
	b.SW(isa.RegA0, -2048, isa.RegA1)
	b.ECALL()
	if _, err := b.Program(); err != nil {
		t.Fatalf("boundary immediates should encode: %v", err)
	}
}

// Assemble must return the validation error through its public API rather
// than crashing the caller.
func TestAssembleRejectsOutOfRangeImmediates(t *testing.T) {
	_, err := Assemble(0x1000, "addi t0, t0, 4000\necall")
	if err == nil {
		t.Fatal("Assemble accepted an out-of-range addi immediate")
	}
	if !strings.Contains(err.Error(), "out of 12-bit range") {
		t.Fatalf("unexpected error: %v", err)
	}
}
