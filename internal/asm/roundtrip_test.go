package asm

import (
	"math/rand"
	"strings"
	"testing"

	"mesa/internal/isa"
)

// TestDisassemblyReassembles: the String() rendering of (almost) every
// instruction is valid assembler input that parses back to an instruction
// with the identical binary encoding — the printer and the parser agree on
// the syntax. JAL is excluded (the builder emits it only via labels) and so
// are CSR ops (String prints the CSR number as part of the operands in a
// form the parser does not accept).
func TestDisassemblyReassembles(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xr := func() isa.Reg { return isa.IntReg(1 + rng.Intn(31)) }
	fr := func() isa.Reg { return isa.FPReg(rng.Intn(32)) }
	imm12 := func() int32 { return int32(rng.Intn(4096) - 2048) }

	var insts []isa.Inst
	none := isa.RegNone
	for i := 0; i < 300; i++ {
		switch rng.Intn(8) {
		case 0:
			ops := []isa.Op{isa.OpADD, isa.OpSUB, isa.OpXOR, isa.OpOR, isa.OpAND,
				isa.OpSLL, isa.OpSRL, isa.OpSRA, isa.OpSLT, isa.OpSLTU,
				isa.OpMUL, isa.OpMULH, isa.OpMULHU, isa.OpMULHSU,
				isa.OpDIV, isa.OpDIVU, isa.OpREM, isa.OpREMU}
			insts = append(insts, isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: xr(), Rs1: xr(), Rs2: xr(), Rs3: none})
		case 1:
			ops := []isa.Op{isa.OpADDI, isa.OpSLTI, isa.OpSLTIU, isa.OpXORI, isa.OpORI, isa.OpANDI}
			insts = append(insts, isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: xr(), Rs1: xr(), Rs2: none, Rs3: none, Imm: imm12()})
		case 2:
			ops := []isa.Op{isa.OpSLLI, isa.OpSRLI, isa.OpSRAI}
			insts = append(insts, isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: xr(), Rs1: xr(), Rs2: none, Rs3: none, Imm: int32(rng.Intn(32))})
		case 3:
			ops := []isa.Op{isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLBU, isa.OpLHU}
			insts = append(insts, isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: xr(), Rs1: xr(), Rs2: none, Rs3: none, Imm: imm12()})
		case 4:
			ops := []isa.Op{isa.OpSB, isa.OpSH, isa.OpSW}
			insts = append(insts, isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: none, Rs1: xr(), Rs2: xr(), Rs3: none, Imm: imm12()})
		case 5:
			ops := []isa.Op{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU}
			insts = append(insts, isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: none, Rs1: xr(), Rs2: xr(), Rs3: none, Imm: int32(rng.Intn(1024)-512) * 2})
		case 6:
			ops := []isa.Op{isa.OpFADDS, isa.OpFSUBS, isa.OpFMULS, isa.OpFDIVS,
				isa.OpFMINS, isa.OpFMAXS, isa.OpFSGNJS, isa.OpFSGNJNS, isa.OpFSGNJXS}
			insts = append(insts, isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: fr(), Rs1: fr(), Rs2: fr(), Rs3: none})
		case 7:
			ops := []isa.Op{isa.OpFMADDS, isa.OpFMSUBS, isa.OpFNMADDS, isa.OpFNMSUBS}
			insts = append(insts, isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: fr(), Rs1: fr(), Rs2: fr(), Rs3: fr()})
		}
	}
	insts = append(insts,
		isa.Inst{Op: isa.OpFLW, Rd: fr(), Rs1: xr(), Rs2: none, Rs3: none, Imm: 4},
		isa.Inst{Op: isa.OpFSW, Rd: none, Rs1: xr(), Rs2: fr(), Rs3: none, Imm: -4},
		isa.Inst{Op: isa.OpFSQRTS, Rd: fr(), Rs1: fr(), Rs2: none, Rs3: none},
		isa.Inst{Op: isa.OpFCVTWS, Rd: xr(), Rs1: fr(), Rs2: none, Rs3: none},
		isa.Inst{Op: isa.OpFCVTSW, Rd: fr(), Rs1: xr(), Rs2: none, Rs3: none},
		isa.Inst{Op: isa.OpFMVXW, Rd: xr(), Rs1: fr(), Rs2: none, Rs3: none},
		isa.Inst{Op: isa.OpFMVWX, Rd: fr(), Rs1: xr(), Rs2: none, Rs3: none},
		isa.Inst{Op: isa.OpFEQS, Rd: xr(), Rs1: fr(), Rs2: fr(), Rs3: none},
		isa.Inst{Op: isa.OpJALR, Rd: xr(), Rs1: xr(), Rs2: none, Rs3: none, Imm: 16},
		isa.Nop(),
		isa.Inst{Op: isa.OpECALL, Rd: none, Rs1: none, Rs2: none, Rs3: none},
		isa.Inst{Op: isa.OpEBREAK, Rd: none, Rs1: none, Rs2: none, Rs3: none},
		isa.Inst{Op: isa.OpFENCE, Rd: none, Rs1: none, Rs2: none, Rs3: none},
	)

	var src strings.Builder
	for _, in := range insts {
		src.WriteString(in.String())
		src.WriteByte('\n')
	}
	prog, err := Assemble(0x1000, src.String())
	if err != nil {
		t.Fatalf("reassemble failed: %v\nsource:\n%s", err, src.String())
	}
	if len(prog.Insts) != len(insts) {
		t.Fatalf("reassembled %d instructions, want %d", len(prog.Insts), len(insts))
	}
	for i, want := range insts {
		got := prog.Insts[i]
		w1, err1 := isa.Encode(want)
		w2, err2 := isa.Encode(got)
		if err1 != nil || err2 != nil || w1 != w2 {
			t.Errorf("inst %d: %q reassembled to %q (%#x vs %#x)", i, want, got, w1, w2)
		}
	}
}
