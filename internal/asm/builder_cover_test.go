package asm

import (
	"testing"

	"mesa/internal/isa"
)

// TestBuilderFullSurface exercises every Builder emitter and verifies each
// emitted instruction round-trips through the binary encoder — the builder,
// encoder, and decoder agree on the whole RV32IMF surface.
func TestBuilderFullSurface(t *testing.T) {
	b := NewBuilder(0x1000)
	x := func(n int) isa.Reg { return isa.IntReg(n) }
	f := func(n int) isa.Reg { return isa.FPReg(n) }

	b.ADD(x(1), x(2), x(3)).SUB(x(4), x(5), x(6)).SLL(x(7), x(8), x(9))
	b.SLT(x(10), x(11), x(12)).SLTU(x(13), x(14), x(15)).XOR(x(16), x(17), x(18))
	b.SRL(x(19), x(20), x(21)).SRA(x(22), x(23), x(24)).OR(x(25), x(26), x(27))
	b.AND(x(28), x(29), x(30))
	b.MUL(x(1), x(2), x(3)).MULH(x(4), x(5), x(6)).MULHU(x(7), x(8), x(9))
	b.MULHSU(x(10), x(11), x(12)).DIV(x(13), x(14), x(15)).DIVU(x(16), x(17), x(18))
	b.REM(x(19), x(20), x(21)).REMU(x(22), x(23), x(24))
	b.ADDI(x(1), x(2), 5).SLTI(x(3), x(4), -5).SLTIU(x(5), x(6), 5)
	b.XORI(x(7), x(8), 5).ORI(x(9), x(10), 5).ANDI(x(11), x(12), 5)
	b.SLLI(x(13), x(14), 3).SRLI(x(15), x(16), 3).SRAI(x(17), x(18), 3)
	b.LUI(x(19), 0x12000).MV(x(20), x(21)).NOP()
	b.LB(x(1), 0, x(2)).LH(x(3), 2, x(4)).LW(x(5), 4, x(6))
	b.LBU(x(7), 0, x(8)).LHU(x(9), 2, x(10)).FLW(f(1), 4, x(11))
	b.SB(x(1), 0, x(2)).SH(x(3), 2, x(4)).SW(x(5), 4, x(6)).FSW(f(2), 8, x(7))
	b.Label("target")
	b.BEQ(x(1), x(2), "target").BNE(x(3), x(4), "target")
	b.BLT(x(5), x(6), "target").BGE(x(7), x(8), "target")
	b.BLTU(x(9), x(10), "target").BGEU(x(11), x(12), "target")
	b.JAL(x(1), "target").J("target").JALR(x(2), x(3), 8).RET()
	b.FADD(f(1), f(2), f(3)).FSUB(f(4), f(5), f(6)).FMUL(f(7), f(8), f(9))
	b.FDIV(f(10), f(11), f(12)).FMIN(f(13), f(14), f(15)).FMAX(f(16), f(17), f(18))
	b.FSQRT(f(19), f(20)).FMV(f(21), f(22))
	b.FMADD(f(1), f(2), f(3), f(4)).FMSUB(f(5), f(6), f(7), f(8))
	b.FNMADD(f(9), f(10), f(11), f(12)).FNMSUB(f(13), f(14), f(15), f(16))
	b.FCVTWS(x(5), f(6)).FCVTSW(f(7), x(8)).FMVXW(x(9), f(10)).FMVWX(f(11), x(12))
	b.FEQ(x(13), f(14), f(15)).FLT(x(16), f(17), f(18)).FLE(x(19), f(20), f(21))
	b.ECALL()

	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) < 70 {
		t.Fatalf("only %d instructions emitted", len(p.Insts))
	}
	for _, in := range p.Insts {
		word, err := isa.Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		got, err := isa.Decode(word)
		if err != nil {
			t.Fatalf("decode %v: %v", in, err)
		}
		got.Addr = in.Addr
		// FMV expands to FSGNJ; MV/NOP to ADDI — compare re-encoded words
		// instead of struct equality for pseudo-ops.
		w2, err := isa.Encode(got)
		if err != nil || w2 != word {
			t.Errorf("round trip changed encoding: %v -> %v", in, got)
		}
	}

	// Addresses are sequential from the base.
	for i, in := range p.Insts {
		if in.Addr != 0x1000+uint32(4*i) {
			t.Fatalf("inst %d addr = %#x", i, in.Addr)
		}
	}
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
}

// TestMustProgramPanics verifies the Must helper propagates errors.
func TestMustProgramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustProgram should panic on undefined label")
		}
	}()
	b := NewBuilder(0)
	b.J("nowhere")
	b.MustProgram()
}

// TestMustAssemblePanics verifies the text-assembler Must helper.
func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble should panic on bad source")
		}
	}()
	MustAssemble(0, "frobnicate x1, x2")
}

// TestAssemblePseudoOps covers the remaining text-assembler paths.
func TestAssemblePseudoOps(t *testing.T) {
	p, err := Assemble(0, `
	mv    t0, t1
	fmv.s f0, f1
	li    t2, -123456
	lui   t3, 0x12345
	auipc t4, 0x1
	jalr  ra, 8(t0)
	ret
	nop
	ebreak
	fence
	csrrw t5, t6, 0x300
	fcvt.wu.s t0, f2
	fcvt.s.wu f3, t1
	fclass.s  t2, f4
	fsgnjn.s  f5, f6, f7
	fsgnjx.s  f8, f9, f10
	fmin.s    f11, f12, f13
	fmax.s    f14, f15, f16
	fmsub.s   f1, f2, f3, f4
	fnmadd.s  f5, f6, f7, f8
	fnmsub.s  f9, f10, f11, f12
	beq  t0, t1, 8
	nop
	ecall
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range p.Insts {
		if _, err := isa.Encode(in); err != nil {
			t.Errorf("unencodable %v: %v", in, err)
		}
	}
}
