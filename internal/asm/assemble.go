package asm

import (
	"fmt"
	"strconv"
	"strings"

	"mesa/internal/isa"
)

// Assemble parses a small RISC-V assembly dialect into a Program based at
// base. Supported syntax per line (comments start with '#' or '//'):
//
//	label:
//	add  x5, x6, x7
//	addi t0, t0, -4
//	lw   a0, 8(sp)
//	sw   a1, 0(a2)
//	beq  t0, zero, done
//	jal  ra, func        |  j loop
//	fmadd.s f0, f1, f2, f3
//	li   t0, 123456      (pseudo, expands to lui+addi as needed)
//	mv   t0, t1          (pseudo)
//	nop / ecall / ebreak / fence / ret
func Assemble(base uint32, src string) (*isa.Program, error) {
	b := NewBuilder(base)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for strings.Contains(line, ":") {
			i := strings.Index(line, ":")
			label := strings.TrimSpace(line[:i])
			if label == "" {
				return nil, fmt.Errorf("asm: line %d: empty label", lineNo+1)
			}
			b.Label(label)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if err := assembleLine(b, line); err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", lineNo+1, err)
		}
	}
	return b.Program()
}

// MustAssemble is Assemble but panics on error.
func MustAssemble(base uint32, src string) *isa.Program {
	p, err := Assemble(base, src)
	if err != nil {
		panic(err)
	}
	return p
}

var mnemonicOps = func() map[string]isa.Op {
	m := make(map[string]isa.Op)
	for op := isa.Op(1); int(op) < isa.NumOps; op++ {
		m[op.String()] = op
	}
	return m
}()

var abiRegs = func() map[string]isa.Reg {
	m := map[string]isa.Reg{
		"zero": isa.X0, "ra": isa.X1, "sp": isa.X2, "gp": isa.X3, "tp": isa.X4,
		"fp": isa.X8,
	}
	for i := 0; i < 32; i++ {
		m[fmt.Sprintf("x%d", i)] = isa.IntReg(i)
		m[fmt.Sprintf("f%d", i)] = isa.FPReg(i)
	}
	for i, r := range []isa.Reg{isa.X5, isa.X6, isa.X7, isa.X28, isa.X29, isa.X30, isa.X31} {
		m[fmt.Sprintf("t%d", i)] = r
	}
	m["s0"], m["s1"] = isa.X8, isa.X9
	for i := 2; i <= 11; i++ {
		m[fmt.Sprintf("s%d", i)] = isa.IntReg(16 + i)
	}
	for i := 0; i <= 7; i++ {
		m[fmt.Sprintf("a%d", i)] = isa.IntReg(10 + i)
	}
	for i := 0; i <= 7; i++ {
		m[fmt.Sprintf("ft%d", i)] = isa.FPReg(i)
		m[fmt.Sprintf("fa%d", i)] = isa.FPReg(10 + i)
	}
	for i := 0; i <= 1; i++ {
		m[fmt.Sprintf("fs%d", i)] = isa.FPReg(8 + i)
	}
	for i := 2; i <= 11; i++ {
		m[fmt.Sprintf("fs%d", i)] = isa.FPReg(16 + i)
	}
	return m
}()

func parseReg(s string) (isa.Reg, error) {
	if r, ok := abiRegs[strings.TrimSpace(s)]; ok {
		return r, nil
	}
	return 0, fmt.Errorf("unknown register %q", s)
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v < -(1<<31) || v > 1<<32-1 {
		return 0, fmt.Errorf("immediate %q out of 32-bit range", s)
	}
	return int32(v), nil
}

// parseMem parses "imm(reg)".
func parseMem(s string) (int32, isa.Reg, error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	immStr := strings.TrimSpace(s[:open])
	imm := int32(0)
	if immStr != "" {
		v, err := parseImm(immStr)
		if err != nil {
			return 0, 0, err
		}
		imm = v
	}
	reg, err := parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return imm, reg, nil
}

func assembleLine(b *Builder, line string) error {
	fields := strings.SplitN(line, " ", 2)
	mnem := strings.ToLower(fields[0])
	rest := ""
	if len(fields) == 2 {
		rest = fields[1]
	}
	args := splitOperands(rest)

	// Pseudo-instructions first.
	switch mnem {
	case "li":
		if len(args) != 2 {
			return fmt.Errorf("li needs 2 operands")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return err
		}
		b.LI(rd, imm)
		return b.Err()
	case "mv":
		if len(args) != 2 {
			return fmt.Errorf("mv needs 2 operands")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return err
		}
		b.MV(rd, rs)
		return b.Err()
	case "fmv.s":
		if len(args) != 2 {
			return fmt.Errorf("fmv.s needs 2 operands")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return err
		}
		b.FMV(rd, rs)
		return b.Err()
	case "j":
		if len(args) != 1 {
			return fmt.Errorf("j needs a label")
		}
		b.J(args[0])
		return b.Err()
	case "ret":
		b.RET()
		return b.Err()
	case "nop":
		b.NOP()
		return b.Err()
	}

	op, ok := mnemonicOps[mnem]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}

	switch {
	case op == isa.OpECALL || op == isa.OpEBREAK || op == isa.OpFENCE:
		b.Emit(isa.Inst{Op: op, Rd: isa.RegNone, Rs1: isa.RegNone, Rs2: isa.RegNone, Rs3: isa.RegNone})

	case op == isa.OpLUI || op == isa.OpAUIPC:
		if len(args) != 2 {
			return fmt.Errorf("%s needs 2 operands", mnem)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return err
		}
		b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: isa.RegNone, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: imm << 12})

	case op == isa.OpJAL:
		if len(args) != 2 {
			return fmt.Errorf("jal needs rd, label")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		b.JAL(rd, args[1])

	case op == isa.OpJALR:
		if len(args) != 2 {
			return fmt.Errorf("jalr needs rd, imm(rs1)")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		imm, rs1, err := parseMem(args[1])
		if err != nil {
			return err
		}
		b.JALR(rd, rs1, imm)

	case op.Class() == isa.ClassLoad:
		if len(args) != 2 {
			return fmt.Errorf("%s needs rd, imm(rs1)", mnem)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		imm, rs1, err := parseMem(args[1])
		if err != nil {
			return err
		}
		b.ri(op, rd, rs1, imm)

	case op.Class() == isa.ClassStore:
		if len(args) != 2 {
			return fmt.Errorf("%s needs rs2, imm(rs1)", mnem)
		}
		rs2, err := parseReg(args[0])
		if err != nil {
			return err
		}
		imm, rs1, err := parseMem(args[1])
		if err != nil {
			return err
		}
		b.store(op, rs2, imm, rs1)

	case op.Class() == isa.ClassBranch:
		if len(args) != 3 {
			return fmt.Errorf("%s needs rs1, rs2, target", mnem)
		}
		rs1, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs2, err := parseReg(args[1])
		if err != nil {
			return err
		}
		if imm, err := parseImm(args[2]); err == nil {
			b.Emit(isa.Inst{Op: op, Rd: isa.RegNone, Rs1: rs1, Rs2: rs2, Rs3: isa.RegNone, Imm: imm})
		} else {
			b.branch(op, rs1, rs2, args[2])
		}

	case op == isa.OpFMADDS || op == isa.OpFMSUBS || op == isa.OpFNMADDS || op == isa.OpFNMSUBS:
		if len(args) != 4 {
			return fmt.Errorf("%s needs 4 operands", mnem)
		}
		regs := make([]isa.Reg, 4)
		for i, a := range args {
			r, err := parseReg(a)
			if err != nil {
				return err
			}
			regs[i] = r
		}
		b.fma(op, regs[0], regs[1], regs[2], regs[3])

	case op == isa.OpFSQRTS || op == isa.OpFCVTWS || op == isa.OpFCVTWUS ||
		op == isa.OpFCVTSW || op == isa.OpFCVTSWU || op == isa.OpFMVXW ||
		op == isa.OpFMVWX || op == isa.OpFCLASSS:
		if len(args) != 2 {
			return fmt.Errorf("%s needs 2 operands", mnem)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return err
		}
		b.r3(op, rd, rs1, isa.RegNone)

	case op.HasImm():
		if len(args) != 3 {
			return fmt.Errorf("%s needs 3 operands", mnem)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return err
		}
		b.ri(op, rd, rs1, imm)

	default:
		if len(args) != 3 {
			return fmt.Errorf("%s needs 3 operands", mnem)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return err
		}
		rs2, err := parseReg(args[2])
		if err != nil {
			return err
		}
		b.r3(op, rd, rs1, rs2)
	}
	return b.Err()
}

func splitOperands(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}
