package asm

import (
	"testing"

	"mesa/internal/isa"
)

func TestBuilderLabels(t *testing.T) {
	b := NewBuilder(0x1000)
	b.LI(isa.X5, 0)
	b.LI(isa.X6, 10)
	b.Label("loop")
	b.ADDI(isa.X5, isa.X5, 1)
	b.BNE(isa.X5, isa.X6, "loop")
	b.ECALL()
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	if p.Base != 0x1000 {
		t.Errorf("base = %#x", p.Base)
	}
	br := p.Insts[3]
	if br.Op != isa.OpBNE || br.Imm != -4 {
		t.Errorf("branch = %v (imm %d), want bne imm -4", br, br.Imm)
	}
	if got := p.Symbols["loop"]; got != 0x1008 {
		t.Errorf("label addr = %#x, want 0x1008", got)
	}
	if br.BranchTarget() != p.Symbols["loop"] {
		t.Errorf("branch target %#x != label %#x", br.BranchTarget(), p.Symbols["loop"])
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder(0)
	b.BNE(isa.X1, isa.X2, "nowhere")
	if _, err := b.Program(); err == nil {
		t.Fatal("expected undefined-label error")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder(0)
	b.Label("x").NOP().Label("x")
	if _, err := b.Program(); err == nil {
		t.Fatal("expected duplicate-label error")
	}
}

func TestLIExpansion(t *testing.T) {
	cases := []struct {
		value int32
		insts int
	}{
		{0, 1},
		{42, 1},
		{-42, 1},
		{2047, 1},
		{2048, 2},
		{-2048, 1},
		{0x12345678, 2},
		{-559038737, 2}, // 0xDEADBEEF
		{0x7FFFF000, 1},
	}
	for _, c := range cases {
		b := NewBuilder(0)
		b.LI(isa.X5, c.value)
		b.ECALL()
		p, err := b.Program()
		if err != nil {
			t.Fatalf("LI(%d): %v", c.value, err)
		}
		if got := len(p.Insts) - 1; got != c.insts {
			t.Errorf("LI(%d) used %d insts, want %d", c.value, got, c.insts)
		}
		// Verify the encoded value by interpretation.
		var reg uint32
		for _, in := range p.Insts[:len(p.Insts)-1] {
			switch in.Op {
			case isa.OpLUI:
				reg = uint32(in.Imm)
			case isa.OpADDI:
				if in.Rs1 == isa.X0 {
					reg = uint32(in.Imm)
				} else {
					reg += uint32(in.Imm)
				}
			}
		}
		if reg != uint32(c.value) {
			t.Errorf("LI(%d) materialized %#x", c.value, reg)
		}
		// All immediates must be encodable.
		for _, in := range p.Insts {
			if _, err := isa.Encode(in); err != nil {
				t.Errorf("LI(%d): unencodable %v: %v", c.value, in, err)
			}
		}
	}
}

func TestAssembleBasic(t *testing.T) {
	src := `
	# simple counted loop
	li   t0, 0
	li   t1, 8
loop:
	addi t0, t0, 1
	bne  t0, t1, loop
	ecall
`
	p, err := Assemble(0x2000, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 5 {
		t.Fatalf("got %d instructions", len(p.Insts))
	}
	if p.Insts[3].Imm != -4 {
		t.Errorf("branch imm = %d", p.Insts[3].Imm)
	}
}

func TestAssembleMemoryAndFP(t *testing.T) {
	src := `
	lw   a0, 8(sp)
	sw   a1, -4(a2)
	flw  fa0, 0(a0)
	fsw  fa1, 12(a0)
	fmadd.s f0, f1, f2, f3
	fsqrt.s f4, f5
	fadd.s fa2, fa0, fa1
	jalr ra, 0(t0)
	ecall
`
	p, err := Assemble(0, src)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		i  int
		op isa.Op
	}{
		{0, isa.OpLW}, {1, isa.OpSW}, {2, isa.OpFLW}, {3, isa.OpFSW},
		{4, isa.OpFMADDS}, {5, isa.OpFSQRTS}, {6, isa.OpFADDS}, {7, isa.OpJALR},
	}
	for _, c := range checks {
		if p.Insts[c.i].Op != c.op {
			t.Errorf("inst %d = %v, want %v", c.i, p.Insts[c.i].Op, c.op)
		}
	}
	if p.Insts[0].Rd != isa.RegA0 || p.Insts[0].Imm != 8 || p.Insts[0].Rs1 != isa.RegSP {
		t.Errorf("lw parsed as %v", p.Insts[0])
	}
	if p.Insts[2].Rd != isa.FPReg(10) {
		t.Errorf("flw rd = %v, want fa0", p.Insts[2].Rd)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"frob x1, x2, x3",
		"add x1, x2",
		"lw x1, x2, x3",
		"addi x1, x2, 999999999999",
		"beq x1, x2",
		"add x1, x2, q9",
	}
	for _, src := range bad {
		if _, err := Assemble(0, src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestAssembleRoundTripThroughEncoder(t *testing.T) {
	src := `
	li   t0, 0
	li   t1, 64
loop:
	slli t2, t0, 2
	add  t3, a0, t2
	lw   t4, 0(t3)
	addi t4, t4, 1
	sw   t4, 0(t3)
	addi t0, t0, 1
	blt  t0, t1, loop
	ecall
`
	p, err := Assemble(0x8000, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range p.Insts {
		word, err := isa.Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		got, err := isa.Decode(word)
		if err != nil {
			t.Fatalf("decode %v: %v", in, err)
		}
		got.Addr = in.Addr
		if got != in {
			t.Errorf("round trip %v -> %v", in, got)
		}
	}
}

func TestBuilderPC(t *testing.T) {
	b := NewBuilder(0x100)
	if b.PC() != 0x100 {
		t.Errorf("PC = %#x", b.PC())
	}
	b.NOP().NOP()
	if b.PC() != 0x108 || b.Len() != 2 {
		t.Errorf("PC = %#x, Len = %d", b.PC(), b.Len())
	}
}
