// Package asm provides tools for constructing RV32IMF programs: a fluent
// Builder with label support and a small text assembler. Kernels in
// internal/kernels are written against the Builder.
package asm

import (
	"fmt"

	"mesa/internal/isa"
)

type fixup struct {
	index int    // instruction index needing patching
	label string // target label
}

// Builder incrementally constructs a Program. Branch and jump instructions
// reference labels, resolved when Program is called.
type Builder struct {
	base   uint32
	insts  []isa.Inst
	labels map[string]int
	fixups []fixup
	err    error
}

// NewBuilder returns a Builder for a program based at the given address.
func NewBuilder(base uint32) *Builder {
	return &Builder{base: base, labels: make(map[string]int)}
}

// Label defines a label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.fail(fmt.Errorf("asm: duplicate label %q", name))
		return b
	}
	b.labels[name] = len(b.insts)
	return b
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Inst) *Builder {
	in.Addr = b.base + uint32(4*len(b.insts))
	b.insts = append(b.insts, in)
	return b
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Err returns the first error recorded while building.
func (b *Builder) Err() error { return b.err }

// Program resolves labels and returns the built program. Every instruction —
// including branch offsets produced by label resolution — is validated
// against the machine encoding, so out-of-range immediates surface here as
// errors rather than as panics deeper in the pipeline. Fuzz-generated
// programs rely on this: a randomly grown loop body whose branch span
// overflows the 13-bit B-type range must fail cleanly.
func (b *Builder) Program() (*isa.Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		offset := int32(4 * (target - f.index))
		b.insts[f.index].Imm = offset
	}
	for i, in := range b.insts {
		if _, err := isa.Encode(in); err != nil {
			return nil, fmt.Errorf("asm: inst %d at %#x: %w", i, in.Addr, err)
		}
	}
	symbols := make(map[string]uint32, len(b.labels))
	for name, idx := range b.labels {
		symbols[name] = b.base + uint32(4*idx)
	}
	return &isa.Program{Base: b.base, Insts: b.insts, Symbols: symbols}, nil
}

// MustProgram is Program but panics on error, for statically known-good code.
func (b *Builder) MustProgram() *isa.Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}

func (b *Builder) r3(op isa.Op, rd, rs1, rs2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Rs3: isa.RegNone})
}

func (b *Builder) ri(op isa.Op, rd, rs1 isa.Reg, imm int32) *Builder {
	return b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: imm})
}

func (b *Builder) branch(op isa.Op, rs1, rs2 isa.Reg, label string) *Builder {
	b.fixups = append(b.fixups, fixup{index: len(b.insts), label: label})
	return b.Emit(isa.Inst{Op: op, Rd: isa.RegNone, Rs1: rs1, Rs2: rs2, Rs3: isa.RegNone})
}

// Integer register-register operations.

func (b *Builder) ADD(rd, rs1, rs2 isa.Reg) *Builder  { return b.r3(isa.OpADD, rd, rs1, rs2) }
func (b *Builder) SUB(rd, rs1, rs2 isa.Reg) *Builder  { return b.r3(isa.OpSUB, rd, rs1, rs2) }
func (b *Builder) SLL(rd, rs1, rs2 isa.Reg) *Builder  { return b.r3(isa.OpSLL, rd, rs1, rs2) }
func (b *Builder) SLT(rd, rs1, rs2 isa.Reg) *Builder  { return b.r3(isa.OpSLT, rd, rs1, rs2) }
func (b *Builder) SLTU(rd, rs1, rs2 isa.Reg) *Builder { return b.r3(isa.OpSLTU, rd, rs1, rs2) }
func (b *Builder) XOR(rd, rs1, rs2 isa.Reg) *Builder  { return b.r3(isa.OpXOR, rd, rs1, rs2) }
func (b *Builder) SRL(rd, rs1, rs2 isa.Reg) *Builder  { return b.r3(isa.OpSRL, rd, rs1, rs2) }
func (b *Builder) SRA(rd, rs1, rs2 isa.Reg) *Builder  { return b.r3(isa.OpSRA, rd, rs1, rs2) }
func (b *Builder) OR(rd, rs1, rs2 isa.Reg) *Builder   { return b.r3(isa.OpOR, rd, rs1, rs2) }
func (b *Builder) AND(rd, rs1, rs2 isa.Reg) *Builder  { return b.r3(isa.OpAND, rd, rs1, rs2) }

// RV32M.

func (b *Builder) MUL(rd, rs1, rs2 isa.Reg) *Builder    { return b.r3(isa.OpMUL, rd, rs1, rs2) }
func (b *Builder) MULH(rd, rs1, rs2 isa.Reg) *Builder   { return b.r3(isa.OpMULH, rd, rs1, rs2) }
func (b *Builder) MULHU(rd, rs1, rs2 isa.Reg) *Builder  { return b.r3(isa.OpMULHU, rd, rs1, rs2) }
func (b *Builder) MULHSU(rd, rs1, rs2 isa.Reg) *Builder { return b.r3(isa.OpMULHSU, rd, rs1, rs2) }
func (b *Builder) DIV(rd, rs1, rs2 isa.Reg) *Builder    { return b.r3(isa.OpDIV, rd, rs1, rs2) }
func (b *Builder) DIVU(rd, rs1, rs2 isa.Reg) *Builder   { return b.r3(isa.OpDIVU, rd, rs1, rs2) }
func (b *Builder) REM(rd, rs1, rs2 isa.Reg) *Builder    { return b.r3(isa.OpREM, rd, rs1, rs2) }
func (b *Builder) REMU(rd, rs1, rs2 isa.Reg) *Builder   { return b.r3(isa.OpREMU, rd, rs1, rs2) }

// Integer register-immediate operations.

func (b *Builder) ADDI(rd, rs1 isa.Reg, imm int32) *Builder  { return b.ri(isa.OpADDI, rd, rs1, imm) }
func (b *Builder) SLTI(rd, rs1 isa.Reg, imm int32) *Builder  { return b.ri(isa.OpSLTI, rd, rs1, imm) }
func (b *Builder) SLTIU(rd, rs1 isa.Reg, imm int32) *Builder { return b.ri(isa.OpSLTIU, rd, rs1, imm) }
func (b *Builder) XORI(rd, rs1 isa.Reg, imm int32) *Builder  { return b.ri(isa.OpXORI, rd, rs1, imm) }
func (b *Builder) ORI(rd, rs1 isa.Reg, imm int32) *Builder   { return b.ri(isa.OpORI, rd, rs1, imm) }
func (b *Builder) ANDI(rd, rs1 isa.Reg, imm int32) *Builder  { return b.ri(isa.OpANDI, rd, rs1, imm) }
func (b *Builder) SLLI(rd, rs1 isa.Reg, sh int32) *Builder   { return b.ri(isa.OpSLLI, rd, rs1, sh) }
func (b *Builder) SRLI(rd, rs1 isa.Reg, sh int32) *Builder   { return b.ri(isa.OpSRLI, rd, rs1, sh) }
func (b *Builder) SRAI(rd, rs1 isa.Reg, sh int32) *Builder   { return b.ri(isa.OpSRAI, rd, rs1, sh) }

// LUI loads the upper 20 bits; imm is the full 32-bit value whose low 12 bits
// must be zero.
func (b *Builder) LUI(rd isa.Reg, imm int32) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpLUI, Rd: rd, Rs1: isa.RegNone, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: imm})
}

// LI loads an arbitrary 32-bit constant using LUI+ADDI as needed.
func (b *Builder) LI(rd isa.Reg, value int32) *Builder {
	lo := value << 20 >> 20 // sign-extended low 12 bits
	hi := value - lo
	switch {
	case hi == 0:
		return b.ADDI(rd, isa.X0, lo)
	case lo == 0:
		return b.LUI(rd, hi)
	default:
		b.LUI(rd, hi)
		return b.ADDI(rd, rd, lo)
	}
}

// MV copies rs1 into rd.
func (b *Builder) MV(rd, rs1 isa.Reg) *Builder { return b.ADDI(rd, rs1, 0) }

// NOP emits a no-op.
func (b *Builder) NOP() *Builder { return b.Emit(isa.Nop()) }

// Memory operations. Offsets follow assembly convention: op rd, imm(rs1).

func (b *Builder) LB(rd isa.Reg, imm int32, rs1 isa.Reg) *Builder {
	return b.ri(isa.OpLB, rd, rs1, imm)
}
func (b *Builder) LH(rd isa.Reg, imm int32, rs1 isa.Reg) *Builder {
	return b.ri(isa.OpLH, rd, rs1, imm)
}
func (b *Builder) LW(rd isa.Reg, imm int32, rs1 isa.Reg) *Builder {
	return b.ri(isa.OpLW, rd, rs1, imm)
}
func (b *Builder) LBU(rd isa.Reg, imm int32, rs1 isa.Reg) *Builder {
	return b.ri(isa.OpLBU, rd, rs1, imm)
}
func (b *Builder) LHU(rd isa.Reg, imm int32, rs1 isa.Reg) *Builder {
	return b.ri(isa.OpLHU, rd, rs1, imm)
}
func (b *Builder) FLW(rd isa.Reg, imm int32, rs1 isa.Reg) *Builder {
	return b.ri(isa.OpFLW, rd, rs1, imm)
}

func (b *Builder) store(op isa.Op, rs2 isa.Reg, imm int32, rs1 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: op, Rd: isa.RegNone, Rs1: rs1, Rs2: rs2, Rs3: isa.RegNone, Imm: imm})
}

func (b *Builder) SB(rs2 isa.Reg, imm int32, rs1 isa.Reg) *Builder {
	return b.store(isa.OpSB, rs2, imm, rs1)
}
func (b *Builder) SH(rs2 isa.Reg, imm int32, rs1 isa.Reg) *Builder {
	return b.store(isa.OpSH, rs2, imm, rs1)
}
func (b *Builder) SW(rs2 isa.Reg, imm int32, rs1 isa.Reg) *Builder {
	return b.store(isa.OpSW, rs2, imm, rs1)
}
func (b *Builder) FSW(rs2 isa.Reg, imm int32, rs1 isa.Reg) *Builder {
	return b.store(isa.OpFSW, rs2, imm, rs1)
}

// Branches to labels.

func (b *Builder) BEQ(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.OpBEQ, rs1, rs2, label)
}
func (b *Builder) BNE(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.OpBNE, rs1, rs2, label)
}
func (b *Builder) BLT(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.OpBLT, rs1, rs2, label)
}
func (b *Builder) BGE(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.OpBGE, rs1, rs2, label)
}
func (b *Builder) BLTU(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.OpBLTU, rs1, rs2, label)
}
func (b *Builder) BGEU(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.OpBGEU, rs1, rs2, label)
}

// JAL jumps to a label, writing the return address to rd.
func (b *Builder) JAL(rd isa.Reg, label string) *Builder {
	b.fixups = append(b.fixups, fixup{index: len(b.insts), label: label})
	return b.Emit(isa.Inst{Op: isa.OpJAL, Rd: rd, Rs1: isa.RegNone, Rs2: isa.RegNone, Rs3: isa.RegNone})
}

// J is an unconditional jump to a label (JAL x0).
func (b *Builder) J(label string) *Builder { return b.JAL(isa.X0, label) }

// JALR jumps to rs1+imm, writing the return address to rd.
func (b *Builder) JALR(rd, rs1 isa.Reg, imm int32) *Builder {
	return b.ri(isa.OpJALR, rd, rs1, imm)
}

// RET returns via the return-address register.
func (b *Builder) RET() *Builder { return b.JALR(isa.X0, isa.RegRA, 0) }

// ECALL emits an environment call, used by kernels to signal completion to
// the simulators.
func (b *Builder) ECALL() *Builder {
	return b.Emit(isa.Inst{Op: isa.OpECALL, Rd: isa.RegNone, Rs1: isa.RegNone, Rs2: isa.RegNone, Rs3: isa.RegNone})
}

// Floating-point operations.

func (b *Builder) FADD(rd, rs1, rs2 isa.Reg) *Builder { return b.r3(isa.OpFADDS, rd, rs1, rs2) }
func (b *Builder) FSUB(rd, rs1, rs2 isa.Reg) *Builder { return b.r3(isa.OpFSUBS, rd, rs1, rs2) }
func (b *Builder) FMUL(rd, rs1, rs2 isa.Reg) *Builder { return b.r3(isa.OpFMULS, rd, rs1, rs2) }
func (b *Builder) FDIV(rd, rs1, rs2 isa.Reg) *Builder { return b.r3(isa.OpFDIVS, rd, rs1, rs2) }
func (b *Builder) FMIN(rd, rs1, rs2 isa.Reg) *Builder { return b.r3(isa.OpFMINS, rd, rs1, rs2) }
func (b *Builder) FMAX(rd, rs1, rs2 isa.Reg) *Builder { return b.r3(isa.OpFMAXS, rd, rs1, rs2) }
func (b *Builder) FSQRT(rd, rs1 isa.Reg) *Builder     { return b.r3(isa.OpFSQRTS, rd, rs1, isa.RegNone) }

func (b *Builder) fma(op isa.Op, rd, rs1, rs2, rs3 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Rs3: rs3})
}

func (b *Builder) FMADD(rd, rs1, rs2, rs3 isa.Reg) *Builder {
	return b.fma(isa.OpFMADDS, rd, rs1, rs2, rs3)
}
func (b *Builder) FMSUB(rd, rs1, rs2, rs3 isa.Reg) *Builder {
	return b.fma(isa.OpFMSUBS, rd, rs1, rs2, rs3)
}
func (b *Builder) FNMADD(rd, rs1, rs2, rs3 isa.Reg) *Builder {
	return b.fma(isa.OpFNMADDS, rd, rs1, rs2, rs3)
}
func (b *Builder) FNMSUB(rd, rs1, rs2, rs3 isa.Reg) *Builder {
	return b.fma(isa.OpFNMSUBS, rd, rs1, rs2, rs3)
}

func (b *Builder) FCVTWS(rd, rs1 isa.Reg) *Builder   { return b.r3(isa.OpFCVTWS, rd, rs1, isa.RegNone) }
func (b *Builder) FCVTSW(rd, rs1 isa.Reg) *Builder   { return b.r3(isa.OpFCVTSW, rd, rs1, isa.RegNone) }
func (b *Builder) FMVXW(rd, rs1 isa.Reg) *Builder    { return b.r3(isa.OpFMVXW, rd, rs1, isa.RegNone) }
func (b *Builder) FMVWX(rd, rs1 isa.Reg) *Builder    { return b.r3(isa.OpFMVWX, rd, rs1, isa.RegNone) }
func (b *Builder) FEQ(rd, rs1, rs2 isa.Reg) *Builder { return b.r3(isa.OpFEQS, rd, rs1, rs2) }
func (b *Builder) FLT(rd, rs1, rs2 isa.Reg) *Builder { return b.r3(isa.OpFLTS, rd, rs1, rs2) }
func (b *Builder) FLE(rd, rs1, rs2 isa.Reg) *Builder { return b.r3(isa.OpFLES, rd, rs1, rs2) }

// FMV copies one FP register to another via sign injection.
func (b *Builder) FMV(rd, rs1 isa.Reg) *Builder { return b.r3(isa.OpFSGNJS, rd, rs1, rs1) }

// Len reports the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.insts) }

// PC returns the address the next emitted instruction will have.
func (b *Builder) PC() uint32 { return b.base + uint32(4*len(b.insts)) }
