package alu

import (
	"math"
	"math/big"
	"testing"

	"mesa/internal/isa"
)

// FuzzFPSpec differentially checks the shared ALU's RV32F semantics against
// independent oracles: big.Float exact arithmetic for the fused
// multiply-add family and an explicitly spelled-out IEEE 754-2019
// minimumNumber/maximumNumber for FMIN.S/FMAX.S. The committed corpus under
// testdata/fuzz/FuzzFPSpec holds the minimized regressions this harness was
// built to catch — the FMIN.S(-0,+0) sign bug, NaN payload propagation, and
// FMA vectors where fused and unfused rounding differ — and replays as an
// ordinary test in every `go test` run.
//
// Run open-ended with:
//
//	go test ./internal/alu -run '^$' -fuzz '^FuzzFPSpec$'
func FuzzFPSpec(f *testing.F) {
	// One entry per op selector with the historical failure vectors.
	f.Add(uint8(0), uint32(negZero), uint32(posZero), uint32(0))                // fmin ±0
	f.Add(uint8(1), uint32(posZero), uint32(negZero), uint32(0))                // fmax ±0
	f.Add(uint8(0), uint32(qNaNPay), uint32(sNaN), uint32(0))                   // fmin NaN payloads
	f.Add(uint8(2), uint32(0x3F800001), uint32(0x3F800001), uint32(0xBF800002)) // fused≠unfused
	f.Add(uint8(2), uint32(0x3F4B0442), uint32(0x3F45341E), uint32(0xBF209B8E))
	f.Add(uint8(4), uint32(one), uint32(one), uint32(F32(-1))) // fnmadd exact zero
	f.Add(uint8(6), uint32(posInf), uint32(negInf), uint32(0)) // fadd inf-inf
	f.Add(uint8(7), uint32(posZero), uint32(posInf), uint32(0))

	ops := []isa.Op{
		isa.OpFMINS, isa.OpFMAXS,
		isa.OpFMADDS, isa.OpFMSUBS, isa.OpFNMADDS, isa.OpFNMSUBS,
		isa.OpFADDS, isa.OpFMULS,
	}
	f.Fuzz(func(t *testing.T, sel uint8, a, b, c uint32) {
		op := ops[int(sel)%len(ops)]
		got, err := Eval(op, a, b, c)
		if err != nil {
			t.Fatalf("Eval(%v): %v", op, err)
		}
		var want uint32
		switch op {
		case isa.OpFMINS:
			want = refMinMax(a, b, false)
		case isa.OpFMAXS:
			want = refMinMax(a, b, true)
		case isa.OpFMADDS:
			want = refFMA(a, b, c, false, false)
		case isa.OpFMSUBS:
			want = refFMA(a, b, c, false, true)
		case isa.OpFNMADDS:
			want = refFMA(a, b, c, true, true)
		case isa.OpFNMSUBS:
			want = refFMA(a, b, c, true, false)
		case isa.OpFADDS:
			// Rounding a binary64 sum of binary32 values to binary32 is
			// innocuous double rounding: an independent path to the same
			// correctly rounded result.
			want = refCanon(float32(float64(ToF32(a)) + float64(ToF32(b))))
		case isa.OpFMULS:
			want = refCanon(float32(float64(ToF32(a)) * float64(ToF32(b))))
		}
		if got != want {
			t.Errorf("%v(%#08x, %#08x, %#08x) = %#08x, want %#08x", op, a, b, c, got, want)
		}
	})
}

func refCanon(f float32) uint32 {
	if f != f {
		return CanonicalNaN
	}
	return math.Float32bits(f)
}

func refNaN(bits uint32) bool { return bits&0x7F800000 == 0x7F800000 && bits&0x7FFFFF != 0 }

// refMinMax is IEEE 754-2019 minimumNumber/maximumNumber written from the
// spec text: NaNs lose to numbers, two NaNs canonicalize, and zeros order by
// sign bit.
func refMinMax(a, b uint32, wantMax bool) uint32 {
	switch {
	case refNaN(a) && refNaN(b):
		return CanonicalNaN
	case refNaN(a):
		return b
	case refNaN(b):
		return a
	}
	da, db := float64(ToF32(a)), float64(ToF32(b))
	if da == db {
		// Only ±0 reaches here with distinct bits: -0 orders below +0.
		aNeg, bNeg := a>>31 == 1, b>>31 == 1
		if wantMax {
			if aNeg && !bNeg {
				return b
			}
			return a
		}
		if bNeg && !aNeg {
			return b
		}
		return a
	}
	if (da > db) == wantMax {
		return a
	}
	return b
}

// refFMA computes round32(±a·b ± c) with a single rounding via exact
// big.Float arithmetic — an oracle independent of math.FMA. negProd negates
// the product term, negC the addend (FNMADD.S = -(a·b)-c, FMSUB.S = a·b-c,
// FNMSUB.S = -(a·b)+c).
func refFMA(a, b, c uint32, negProd, negC bool) uint32 {
	fa, fb, fc := ToF32(a), ToF32(b), ToF32(c)
	if negProd {
		fa = -fa
	}
	if negC {
		fc = -fc
	}
	if refNaN(F32(fa)) || refNaN(F32(fb)) || refNaN(F32(fc)) {
		return CanonicalNaN
	}
	aInf := math.IsInf(float64(fa), 0)
	bInf := math.IsInf(float64(fb), 0)
	cInf := math.IsInf(float64(fc), 0)
	if aInf || bInf || cInf {
		// Infinity semantics (inf·0 → NaN, inf-inf → NaN, else ±inf) are
		// exact in float64, with no rounding to disagree about.
		return refCanon(float32(math.FMA(float64(fa), float64(fb), float64(fc))))
	}
	// Finite operands: the product of two float32s needs ≤48 significand
	// bits and the addends' exponents span < 2·(127+23+24) bits, so 600 bits
	// make both the product and the sum exact. Float32() then applies one
	// round-to-nearest-even.
	x := new(big.Float).SetPrec(600).SetFloat64(float64(fa))
	y := new(big.Float).SetPrec(600).SetFloat64(float64(fb))
	z := new(big.Float).SetPrec(600).SetFloat64(float64(fc))
	prod := new(big.Float).SetPrec(600).Mul(x, y)
	sum := new(big.Float).SetPrec(600).Add(prod, z)
	if sum.Sign() == 0 {
		// big.Float does not model IEEE zero-sign addition: the sum is -0
		// only when both the product and the addend are -0; cancellation of
		// non-zero addends gives +0 under round-to-nearest-even.
		if prod.Sign() == 0 {
			prodNeg := math.Signbit(float64(fa)) != math.Signbit(float64(fb))
			if prodNeg && math.Signbit(float64(fc)) {
				return negZero
			}
		}
		return posZero
	}
	f32, _ := sum.Float32()
	return refCanon(f32)
}
