package alu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mesa/internal/isa"
)

func su(x int32) uint32 { return uint32(x) }

func eval(t *testing.T, op isa.Op, a, b uint32) uint32 {
	t.Helper()
	v, err := Eval(op, a, b, 0)
	if err != nil {
		t.Fatalf("Eval(%v): %v", op, err)
	}
	return v
}

func TestIntegerOps(t *testing.T) {
	cases := []struct {
		op      isa.Op
		a, b, w uint32
	}{
		{isa.OpADD, 3, 4, 7},
		{isa.OpADD, 0xFFFFFFFF, 1, 0},
		{isa.OpSUB, 3, 4, 0xFFFFFFFF},
		{isa.OpSLL, 1, 31, 0x80000000},
		{isa.OpSLL, 1, 33, 2}, // shift amount masked to 5 bits
		{isa.OpSRL, 0x80000000, 31, 1},
		{isa.OpSRA, 0x80000000, 31, 0xFFFFFFFF},
		{isa.OpSLT, su(-1), 0, 1},
		{isa.OpSLTU, 0xFFFFFFFF, 0, 0},
		{isa.OpXOR, 0xF0F0, 0x0FF0, 0xFF00},
		{isa.OpOR, 0xF000, 0x000F, 0xF00F},
		{isa.OpAND, 0xFF00, 0x0FF0, 0x0F00},
		{isa.OpMUL, 7, 6, 42},
		{isa.OpMUL, 0xFFFFFFFF, 0xFFFFFFFF, 1}, // (-1)*(-1)
		{isa.OpMULHU, 0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFE},
		{isa.OpMULH, 0xFFFFFFFF, 0xFFFFFFFF, 0}, // (-1)*(-1) high bits
		{isa.OpDIV, su(-7), 2, su(-3)},
		{isa.OpDIVU, 7, 2, 3},
		{isa.OpREM, su(-7), 2, su(-1)},
		{isa.OpREMU, 7, 2, 1},
	}
	for _, c := range cases {
		if got := eval(t, c.op, c.a, c.b); got != c.w {
			t.Errorf("%v(%#x, %#x) = %#x, want %#x", c.op, c.a, c.b, got, c.w)
		}
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	// RISC-V defines division by zero and signed overflow without traps.
	if got := eval(t, isa.OpDIV, 5, 0); got != 0xFFFFFFFF {
		t.Errorf("div by zero = %#x, want all ones", got)
	}
	if got := eval(t, isa.OpDIVU, 5, 0); got != 0xFFFFFFFF {
		t.Errorf("divu by zero = %#x", got)
	}
	if got := eval(t, isa.OpREM, 5, 0); got != 5 {
		t.Errorf("rem by zero = %d, want dividend", got)
	}
	if got := eval(t, isa.OpDIV, 0x80000000, 0xFFFFFFFF); got != 0x80000000 {
		t.Errorf("INT_MIN / -1 = %#x, want INT_MIN", got)
	}
	if got := eval(t, isa.OpREM, 0x80000000, 0xFFFFFFFF); got != 0 {
		t.Errorf("INT_MIN %% -1 = %#x, want 0", got)
	}
}

func TestFloatOps(t *testing.T) {
	f := func(x float32) uint32 { return F32(x) }
	cases := []struct {
		op   isa.Op
		a, b float32
		want float32
	}{
		{isa.OpFADDS, 1.5, 2.25, 3.75},
		{isa.OpFSUBS, 1.5, 2.25, -0.75},
		{isa.OpFMULS, 3, 0.5, 1.5},
		{isa.OpFDIVS, 1, 4, 0.25},
		{isa.OpFMINS, -1, 2, -1},
		{isa.OpFMAXS, -1, 2, 2},
	}
	for _, c := range cases {
		if got := eval(t, c.op, f(c.a), f(c.b)); got != f(c.want) {
			t.Errorf("%v(%g,%g) = %g, want %g", c.op, c.a, c.b, ToF32(got), c.want)
		}
	}
	if got := eval(t, isa.OpFSQRTS, f(9), 0); ToF32(got) != 3 {
		t.Errorf("sqrt(9) = %g", ToF32(got))
	}
	got, err := Eval(isa.OpFMADDS, f(2), f(3), f(4))
	if err != nil || ToF32(got) != 10 {
		t.Errorf("fmadd(2,3,4) = %g, %v", ToF32(got), err)
	}
	got, err = Eval(isa.OpFNMSUBS, f(2), f(3), f(4))
	if err != nil || ToF32(got) != -2 {
		t.Errorf("fnmsub(2,3,4) = %g, %v", ToF32(got), err)
	}
}

func TestFPCompareAndConvert(t *testing.T) {
	one, two := F32(1), F32(2)
	if eval(t, isa.OpFLTS, one, two) != 1 || eval(t, isa.OpFLTS, two, one) != 0 {
		t.Error("flt.s broken")
	}
	if eval(t, isa.OpFLES, one, one) != 1 {
		t.Error("fle.s broken")
	}
	if eval(t, isa.OpFEQS, one, one) != 1 || eval(t, isa.OpFEQS, one, two) != 0 {
		t.Error("feq.s broken")
	}
	if got := eval(t, isa.OpFCVTWS, F32(-3.7), 0); int32(got) != -3 {
		t.Errorf("fcvt.w.s(-3.7) = %d, want -3 (truncation)", int32(got))
	}
	if got := eval(t, isa.OpFCVTSW, su(-5), 0); ToF32(got) != -5 {
		t.Errorf("fcvt.s.w(-5) = %g", ToF32(got))
	}
	nan := F32(float32(math.NaN()))
	if got := eval(t, isa.OpFMINS, nan, two); ToF32(got) != 2 {
		t.Error("fmin with NaN should return the other operand")
	}
}

func TestSignInjection(t *testing.T) {
	pos, neg := F32(1.5), F32(-2.5)
	if got := eval(t, isa.OpFSGNJS, pos, neg); ToF32(got) != -1.5 {
		t.Errorf("fsgnj = %g", ToF32(got))
	}
	if got := eval(t, isa.OpFSGNJNS, neg, neg); ToF32(got) != 2.5 {
		t.Errorf("fsgnjn = %g", ToF32(got))
	}
	if got := eval(t, isa.OpFSGNJXS, neg, neg); ToF32(got) != 2.5 {
		t.Errorf("fsgnjx = %g", ToF32(got))
	}
}

func TestEvalBranch(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a, b uint32
		want bool
	}{
		{isa.OpBEQ, 5, 5, true},
		{isa.OpBNE, 5, 5, false},
		{isa.OpBLT, su(-1), 0, true},
		{isa.OpBGE, su(-1), 0, false},
		{isa.OpBLTU, 0xFFFFFFFF, 0, false},
		{isa.OpBGEU, 0xFFFFFFFF, 0, true},
	}
	for _, c := range cases {
		got, err := EvalBranch(c.op, c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("%v(%#x,%#x) = %v, %v", c.op, c.a, c.b, got, err)
		}
	}
	if _, err := EvalBranch(isa.OpADD, 0, 0); err == nil {
		t.Error("EvalBranch should reject non-branches")
	}
}

func TestFClass(t *testing.T) {
	cases := []struct {
		v    float32
		want uint32
	}{
		{float32(math.Inf(-1)), 1 << 0},
		{-1.5, 1 << 1},
		{float32(math.Copysign(0, -1)), 1 << 3},
		{0, 1 << 4},
		{1.5, 1 << 6},
		{float32(math.Inf(1)), 1 << 7},
	}
	for _, c := range cases {
		if got := eval(t, isa.OpFCLASSS, F32(c.v), 0); got != c.want {
			t.Errorf("fclass(%g) = %#x, want %#x", c.v, got, c.want)
		}
	}
}

// Property: ADD/SUB are inverses, XOR is self-inverse, MUL commutes.
func TestAlgebraicProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(2))}
	addSub := func(a, b uint32) bool {
		s := eval(t, isa.OpADD, a, b)
		return eval(t, isa.OpSUB, s, b) == a
	}
	if err := quick.Check(addSub, cfg); err != nil {
		t.Errorf("add/sub inverse: %v", err)
	}
	xorInv := func(a, b uint32) bool {
		return eval(t, isa.OpXOR, eval(t, isa.OpXOR, a, b), b) == a
	}
	if err := quick.Check(xorInv, cfg); err != nil {
		t.Errorf("xor self-inverse: %v", err)
	}
	mulComm := func(a, b uint32) bool {
		return eval(t, isa.OpMUL, a, b) == eval(t, isa.OpMUL, b, a)
	}
	if err := quick.Check(mulComm, cfg); err != nil {
		t.Errorf("mul commutativity: %v", err)
	}
	divRem := func(a, b uint32) bool {
		if b == 0 {
			return true
		}
		q := eval(t, isa.OpDIVU, a, b)
		r := eval(t, isa.OpREMU, a, b)
		return q*b+r == a && r < b
	}
	if err := quick.Check(divRem, cfg); err != nil {
		t.Errorf("divu/remu identity: %v", err)
	}
}

func TestRemainingConversions(t *testing.T) {
	// Unsigned conversions.
	if got := eval(t, isa.OpFCVTWUS, F32(3.9), 0); got != 3 {
		t.Errorf("fcvt.wu.s(3.9) = %d", got)
	}
	if got := eval(t, isa.OpFCVTWUS, F32(-1), 0); got != 0 {
		t.Errorf("fcvt.wu.s(-1) = %d, want clamp to 0", got)
	}
	if got := eval(t, isa.OpFCVTSWU, 3_000_000_000, 0); ToF32(got) != 3e9 {
		t.Errorf("fcvt.s.wu = %g", ToF32(got))
	}
	// Saturation on overflow and NaN.
	if got := eval(t, isa.OpFCVTWS, F32(1e20), 0); int32(got) != math.MaxInt32 {
		t.Errorf("fcvt.w.s(1e20) = %d, want saturate", int32(got))
	}
	nan := F32(float32(math.NaN()))
	if got := eval(t, isa.OpFCVTWS, nan, 0); int32(got) != math.MaxInt32 {
		t.Errorf("fcvt.w.s(NaN) = %d", int32(got))
	}
	// Moves preserve bits.
	if got := eval(t, isa.OpFMVXW, 0xDEADBEEF, 0); got != 0xDEADBEEF {
		t.Error("fmv.x.w changed bits")
	}
	if got := eval(t, isa.OpFMVWX, 0xDEADBEEF, 0); got != 0xDEADBEEF {
		t.Error("fmv.w.x changed bits")
	}
}

func TestMULHSU(t *testing.T) {
	// (-1 signed) * (2^32-1 unsigned): high word of -(2^32-1).
	got := eval(t, isa.OpMULHSU, su(-1), 0xFFFFFFFF)
	prod := int64(-1) * int64(0xFFFFFFFF)
	want := uint32(uint64(prod) >> 32)
	if got != want {
		t.Errorf("mulhsu = %#x, want %#x", got, want)
	}
}

func TestFClassEdges(t *testing.T) {
	// Subnormals and NaN classes.
	sub := uint32(1) // smallest positive subnormal
	if got := eval(t, isa.OpFCLASSS, sub, 0); got != 1<<5 {
		t.Errorf("fclass(+subnormal) = %#x", got)
	}
	if got := eval(t, isa.OpFCLASSS, sub|0x80000000, 0); got != 1<<2 {
		t.Errorf("fclass(-subnormal) = %#x", got)
	}
	quiet := F32(float32(math.NaN()))
	if got := eval(t, isa.OpFCLASSS, quiet, 0); got != 1<<9 {
		t.Errorf("fclass(qNaN) = %#x", got)
	}
	sig := uint32(0x7F800001) // signaling NaN pattern
	if got := eval(t, isa.OpFCLASSS, sig, 0); got != 1<<8 {
		t.Errorf("fclass(sNaN) = %#x", got)
	}
}

func TestEvalRejectsNonALUOps(t *testing.T) {
	for _, op := range []isa.Op{isa.OpLW, isa.OpSW, isa.OpBEQ, isa.OpJAL, isa.OpECALL} {
		if _, err := Eval(op, 0, 0, 0); err == nil {
			t.Errorf("Eval(%v) should fail", op)
		}
	}
}

func TestFMinMaxNaNBothSides(t *testing.T) {
	nan := F32(float32(math.NaN()))
	if got := eval(t, isa.OpFMAXS, F32(2), nan); ToF32(got) != 2 {
		t.Error("fmax(x, NaN) should return x")
	}
}
