package alu

import (
	"math"
	"testing"

	"mesa/internal/isa"
)

// Spec-vector tests for the RV32F corner cases the differential fuzzer is
// built to catch: FMIN.S/FMAX.S zero-sign and NaN-canonicalization rules
// (RISC-V ISA §11.6) and the single-rounding fused multiply-add family
// (§11.5). All vectors are expressed as bit patterns because the
// interesting behaviour — signed zeros, NaN payloads — is invisible at
// float32 level.

const (
	negZero = 0x80000000
	posZero = 0x00000000
	posInf  = 0x7F800000
	negInf  = 0xFF800000
	qNaNPay = 0x7FC12345 // quiet NaN with a non-canonical payload
	sNaN    = 0x7F800001 // signaling NaN
	one     = 0x3F800000
	two     = 0x40000000
)

func evalBits(t *testing.T, op isa.Op, a, b, c uint32) uint32 {
	t.Helper()
	v, err := Eval(op, a, b, c)
	if err != nil {
		t.Fatalf("Eval(%v): %v", op, err)
	}
	return v
}

func TestFMinFMaxSpecVectors(t *testing.T) {
	cases := []struct {
		name    string
		op      isa.Op
		a, b, w uint32
	}{
		// The paper-cited trap: FMIN.S(-0.0, +0.0) is -0.0 in either
		// operand order, and symmetrically FMAX.S gives +0.0.
		{"min(-0,+0)", isa.OpFMINS, negZero, posZero, negZero},
		{"min(+0,-0)", isa.OpFMINS, posZero, negZero, negZero},
		{"max(-0,+0)", isa.OpFMAXS, negZero, posZero, posZero},
		{"max(+0,-0)", isa.OpFMAXS, posZero, negZero, posZero},
		{"min(-0,-0)", isa.OpFMINS, negZero, negZero, negZero},
		{"max(+0,+0)", isa.OpFMAXS, posZero, posZero, posZero},

		// One NaN operand: the other operand, never the NaN payload.
		{"min(NaN,2)", isa.OpFMINS, qNaNPay, two, two},
		{"min(2,NaN)", isa.OpFMINS, two, qNaNPay, two},
		{"max(sNaN,2)", isa.OpFMAXS, sNaN, two, two},
		{"max(2,sNaN)", isa.OpFMAXS, two, sNaN, two},
		{"min(NaN,-inf)", isa.OpFMINS, qNaNPay, negInf, negInf},

		// Two NaN operands: the canonical NaN, not a propagated payload.
		{"min(NaN,NaN)", isa.OpFMINS, qNaNPay, sNaN, CanonicalNaN},
		{"max(NaN,NaN)", isa.OpFMAXS, qNaNPay, qNaNPay, CanonicalNaN},

		// Ordinary ordering, including infinities.
		{"min(1,2)", isa.OpFMINS, one, two, one},
		{"max(1,2)", isa.OpFMAXS, one, two, two},
		{"min(-inf,1)", isa.OpFMINS, negInf, one, negInf},
		{"max(inf,1)", isa.OpFMAXS, posInf, one, posInf},
	}
	for _, c := range cases {
		if got := evalBits(t, c.op, c.a, c.b, 0); got != c.w {
			t.Errorf("%s: %v(%#08x, %#08x) = %#08x, want %#08x", c.name, c.op, c.a, c.b, got, c.w)
		}
	}
}

// TestFMASingleRounding pins the fused family to single-rounding semantics
// with vectors where a separately rounded multiply-then-add gives a
// different answer. These are the committed regressions behind the fuzz
// corpus: before the fix the result depended on whether the Go compiler
// fused the expression on the host GOARCH.
func TestFMASingleRounding(t *testing.T) {
	cases := []struct {
		a, b, c, fused uint32
	}{
		// (1+2⁻²³)² - (1+2⁻²²): exact result 2⁻⁴⁶; the unfused product
		// rounds to 1+2⁻²², so multiply-then-add returns exactly 0.
		{0x3F800001, 0x3F800001, 0xBF800002, 0x28800000},
		// Last-ulp divergences found by random search.
		{0x3F4B0442, 0x3F45341E, 0xBF209B8E, 0xBC86FE52},
		{0x3F092A35, 0x3F74ED16, 0xBF08B92B, 0xBCAFBD14},
		{0x3F6211B5, 0x3F17A4D1, 0xBF4C3D24, 0xBE8CA64D},
	}
	for _, c := range cases {
		got := evalBits(t, isa.OpFMADDS, c.a, c.b, c.c)
		if got != c.fused {
			t.Errorf("fmadd(%#08x,%#08x,%#08x) = %#08x, want single-rounded %#08x",
				c.a, c.b, c.c, got, c.fused)
		}
		unfused := F32(ToF32(c.a) * ToF32(c.b)) // rounded product…
		unfused = F32(ToF32(unfused) + ToF32(c.c))
		if got == unfused {
			t.Errorf("vector %#08x,%#08x,%#08x does not separate fused from unfused", c.a, c.b, c.c)
		}
	}
}

// TestFMAFamilySigns checks the operand-negation semantics of the four FMA
// variants, including the exact-zero sign cases where negating the rounded
// result would give the wrong zero.
func TestFMAFamilySigns(t *testing.T) {
	f := func(x float32) uint32 { return F32(x) }
	cases := []struct {
		name    string
		op      isa.Op
		a, b, c uint32
		want    uint32
	}{
		{"fmadd", isa.OpFMADDS, f(2), f(3), f(4), f(10)},
		{"fmsub", isa.OpFMSUBS, f(2), f(3), f(4), f(2)},
		{"fnmadd", isa.OpFNMADDS, f(2), f(3), f(4), f(-10)},
		{"fnmsub", isa.OpFNMSUBS, f(2), f(3), f(4), f(-2)},
		// FNMADD.S(1,1,-1) = -(1·1)-(-1) = -1+1: exact cancellation gives
		// +0 under round-to-nearest-even. Negating fma(1,1,-1)=+0 after
		// rounding would give -0.
		{"fnmadd exact zero", isa.OpFNMADDS, f(1), f(1), f(-1), posZero},
		{"fmsub exact zero", isa.OpFMSUBS, f(1), f(1), f(1), posZero},
		// Zero products keep IEEE zero-sign addition rules: (+0)+(−0)=+0,
		// (−0)+(−0)=−0.
		{"fmadd zero signs", isa.OpFMADDS, posZero, negZero, negZero, negZero},
		{"fmadd mixed zeros", isa.OpFMADDS, posZero, posZero, negZero, posZero},
	}
	for _, c := range cases {
		if got := evalBits(t, c.op, c.a, c.b, c.c); got != c.want {
			t.Errorf("%s: %v(%#08x,%#08x,%#08x) = %#08x, want %#08x",
				c.name, c.op, c.a, c.b, c.c, got, c.want)
		}
	}
}

// TestArithmeticNaNCanonicalization: every FP arithmetic op that produces a
// NaN produces the canonical 0x7FC00000, regardless of input payloads.
func TestArithmeticNaNCanonicalization(t *testing.T) {
	cases := []struct {
		name    string
		op      isa.Op
		a, b, c uint32
	}{
		{"fadd NaN in", isa.OpFADDS, qNaNPay, one, 0},
		{"fadd inf-inf", isa.OpFADDS, posInf, negInf, 0},
		{"fsub NaN in", isa.OpFSUBS, one, sNaN, 0},
		{"fmul 0*inf", isa.OpFMULS, posZero, posInf, 0},
		{"fdiv 0/0", isa.OpFDIVS, posZero, posZero, 0},
		{"fdiv inf/inf", isa.OpFDIVS, posInf, posInf, 0},
		{"fsqrt(-1)", isa.OpFSQRTS, F32(-1), 0, 0},
		{"fmadd NaN in", isa.OpFMADDS, qNaNPay, one, one},
		{"fmadd inf*0", isa.OpFMADDS, posInf, posZero, one},
		{"fnmsub inf-inf", isa.OpFNMSUBS, posInf, one, posInf},
	}
	for _, c := range cases {
		if got := evalBits(t, c.op, c.a, c.b, c.c); got != CanonicalNaN {
			t.Errorf("%s: %v = %#08x, want canonical NaN %#08x", c.name, c.op, got, uint32(CanonicalNaN))
		}
	}
	// Sign injection is not arithmetic: payloads pass through untouched.
	if got := evalBits(t, isa.OpFSGNJS, qNaNPay, one, 0); got != qNaNPay&0x7FFFFFFF {
		t.Errorf("fsgnj should preserve NaN payloads, got %#08x", got)
	}
}

// TestFMADoubleRoundingCorrection pins the case FuzzFPSpec found: a
// denormal×huge product plus a tiny denormal addend, where the exact result
// carries ~180 significand bits and float32(math.FMA(float64...)) lands on
// the wrong side of the binary32 tie. The round-to-odd correction must give
// the correctly rounded answer.
func TestFMADoubleRoundingCorrection(t *testing.T) {
	a, b, c := uint32(0x00000003), uint32(0x7F7FFF9E), uint32(0x000000A5)
	const want = 0xB5BFFFB7 // exact-arithmetic rounding (big.Float reference)
	if got := evalBits(t, isa.OpFNMADDS, a, b, c); got != want {
		t.Errorf("fnmadd(%#08x,%#08x,%#08x) = %#08x, want %#08x", a, b, c, got, want)
	}
	// The naive emulation demonstrably differs on this vector — if it stops
	// differing, the vector no longer guards anything.
	naive := float32(math.FMA(-float64(ToF32(a)), float64(ToF32(b)), -float64(ToF32(c))))
	if math.Float32bits(naive) == want {
		t.Errorf("vector no longer separates corrected from naive double rounding")
	}
}

// TestFMAPortability: the FMA result must be byte-identical across GOARCH
// and correctly rounded. Cross-check the round-to-odd implementation against
// the exact big.Float oracle (refFMA, shared with FuzzFPSpec) on a
// structured sweep.
func TestFMAPortability(t *testing.T) {
	for i := 0; i < 1000; i++ {
		a := uint32(i*2654435761 + 1)
		b := a>>7 | a<<25
		c := (a ^ 0x5A5A5A5A) | 0x80000000
		want := refFMA(a, b, c, false, false)
		if got := evalBits(t, isa.OpFMADDS, a, b, c); got != want {
			t.Fatalf("fmadd(%#08x,%#08x,%#08x) = %#08x, want %#08x", a, b, c, got, want)
		}
	}
}
