// Package alu implements the arithmetic semantics of RV32IMF operations on
// 32-bit register values. The same functions back the functional simulator,
// the CPU timing model, and the accelerator's processing elements, so all
// execution engines in the reproduction compute bit-identical results.
//
// Floating-point values are carried as their IEEE-754 single-precision bit
// patterns in uint32, matching how the register file stores them.
package alu

import (
	"fmt"
	"math"

	"mesa/internal/isa"
)

// F32 converts a float32 to its bit pattern.
func F32(f float32) uint32 { return math.Float32bits(f) }

// ToF32 converts a bit pattern to a float32.
func ToF32(b uint32) float32 { return math.Float32frombits(b) }

// Eval computes the result of a non-memory, non-control operation given its
// (up to three) source operand values. Operands for absent sources are
// ignored. For branches, use EvalBranch; for memory, the engines compute the
// effective address with EffAddr and perform the access themselves.
func Eval(op isa.Op, a, b, c uint32) (uint32, error) {
	sa, sb := int32(a), int32(b)
	switch op {
	case isa.OpADD, isa.OpADDI:
		return a + b, nil
	case isa.OpSUB:
		return a - b, nil
	case isa.OpSLL, isa.OpSLLI:
		return a << (b & 31), nil
	case isa.OpSLT, isa.OpSLTI:
		if sa < sb {
			return 1, nil
		}
		return 0, nil
	case isa.OpSLTU, isa.OpSLTIU:
		if a < b {
			return 1, nil
		}
		return 0, nil
	case isa.OpXOR, isa.OpXORI:
		return a ^ b, nil
	case isa.OpSRL, isa.OpSRLI:
		return a >> (b & 31), nil
	case isa.OpSRA, isa.OpSRAI:
		return uint32(sa >> (b & 31)), nil
	case isa.OpOR, isa.OpORI:
		return a | b, nil
	case isa.OpAND, isa.OpANDI:
		return a & b, nil
	case isa.OpLUI:
		return b, nil // immediate already holds the shifted value
	case isa.OpNOP:
		return 0, nil

	case isa.OpMUL:
		return uint32(sa * sb), nil
	case isa.OpMULH:
		return uint32(uint64(int64(sa)*int64(sb)) >> 32), nil
	case isa.OpMULHSU:
		return uint32(uint64(int64(sa)*int64(uint64(b))) >> 32), nil
	case isa.OpMULHU:
		return uint32(uint64(a) * uint64(b) >> 32), nil
	case isa.OpDIV:
		switch {
		case b == 0:
			return 0xFFFFFFFF, nil
		case a == 0x80000000 && b == 0xFFFFFFFF:
			return 0x80000000, nil
		}
		return uint32(sa / sb), nil
	case isa.OpDIVU:
		if b == 0 {
			return 0xFFFFFFFF, nil
		}
		return a / b, nil
	case isa.OpREM:
		switch {
		case b == 0:
			return a, nil
		case a == 0x80000000 && b == 0xFFFFFFFF:
			return 0, nil
		}
		return uint32(sa % sb), nil
	case isa.OpREMU:
		if b == 0 {
			return a, nil
		}
		return a % b, nil

	case isa.OpFADDS:
		return F32(ToF32(a) + ToF32(b)), nil
	case isa.OpFSUBS:
		return F32(ToF32(a) - ToF32(b)), nil
	case isa.OpFMULS:
		return F32(ToF32(a) * ToF32(b)), nil
	case isa.OpFDIVS:
		return F32(ToF32(a) / ToF32(b)), nil
	case isa.OpFSQRTS:
		return F32(float32(math.Sqrt(float64(ToF32(a))))), nil
	case isa.OpFMINS:
		return F32(fmin(ToF32(a), ToF32(b))), nil
	case isa.OpFMAXS:
		return F32(fmax(ToF32(a), ToF32(b))), nil
	case isa.OpFMADDS:
		return F32(ToF32(a)*ToF32(b) + ToF32(c)), nil
	case isa.OpFMSUBS:
		return F32(ToF32(a)*ToF32(b) - ToF32(c)), nil
	case isa.OpFNMADDS:
		return F32(-(ToF32(a) * ToF32(b)) - ToF32(c)), nil
	case isa.OpFNMSUBS:
		return F32(-(ToF32(a) * ToF32(b)) + ToF32(c)), nil

	case isa.OpFCVTWS:
		return uint32(int32(clampF64(float64(ToF32(a)), math.MinInt32, math.MaxInt32))), nil
	case isa.OpFCVTWUS:
		return uint32(clampF64(float64(ToF32(a)), 0, math.MaxUint32)), nil
	case isa.OpFCVTSW:
		return F32(float32(int32(a))), nil
	case isa.OpFCVTSWU:
		return F32(float32(a)), nil
	case isa.OpFMVXW, isa.OpFMVWX:
		return a, nil
	case isa.OpFSGNJS:
		return a&0x7FFFFFFF | b&0x80000000, nil
	case isa.OpFSGNJNS:
		return a&0x7FFFFFFF | ^b&0x80000000, nil
	case isa.OpFSGNJXS:
		return a ^ b&0x80000000, nil
	case isa.OpFEQS:
		if ToF32(a) == ToF32(b) {
			return 1, nil
		}
		return 0, nil
	case isa.OpFLTS:
		if ToF32(a) < ToF32(b) {
			return 1, nil
		}
		return 0, nil
	case isa.OpFLES:
		if ToF32(a) <= ToF32(b) {
			return 1, nil
		}
		return 0, nil
	case isa.OpFCLASSS:
		return fclass(ToF32(a)), nil
	}
	return 0, fmt.Errorf("alu: cannot evaluate %v", op)
}

// EvalBranch reports whether a conditional branch is taken given its two
// source operand values.
func EvalBranch(op isa.Op, a, b uint32) (bool, error) {
	sa, sb := int32(a), int32(b)
	switch op {
	case isa.OpBEQ:
		return a == b, nil
	case isa.OpBNE:
		return a != b, nil
	case isa.OpBLT:
		return sa < sb, nil
	case isa.OpBGE:
		return sa >= sb, nil
	case isa.OpBLTU:
		return a < b, nil
	case isa.OpBGEU:
		return a >= b, nil
	}
	return false, fmt.Errorf("alu: %v is not a branch", op)
}

// EffAddr computes the effective address of a load or store.
func EffAddr(base uint32, imm int32) uint32 { return base + uint32(imm) }

func fmin(a, b float32) float32 {
	switch {
	case isNaN32(a):
		return b
	case isNaN32(b):
		return a
	case a < b:
		return a
	}
	return b
}

func fmax(a, b float32) float32 {
	switch {
	case isNaN32(a):
		return b
	case isNaN32(b):
		return a
	case a > b:
		return a
	}
	return b
}

func isNaN32(f float32) bool { return f != f }

func clampF64(v, lo, hi float64) float64 {
	switch {
	case math.IsNaN(v):
		return hi
	case v < lo:
		return lo
	case v > hi:
		return hi
	}
	return v
}

// fclass implements the RISC-V FCLASS.S result mask.
func fclass(f float32) uint32 {
	bits := F32(f)
	sign := bits>>31 == 1
	exp := bits >> 23 & 0xFF
	frac := bits & 0x7FFFFF
	switch {
	case exp == 0xFF && frac != 0:
		if frac>>22 == 1 {
			return 1 << 9 // quiet NaN
		}
		return 1 << 8 // signaling NaN
	case exp == 0xFF && sign:
		return 1 << 0 // -inf
	case exp == 0xFF:
		return 1 << 7 // +inf
	case exp == 0 && frac == 0 && sign:
		return 1 << 3 // -0
	case exp == 0 && frac == 0:
		return 1 << 4 // +0
	case exp == 0 && sign:
		return 1 << 2 // negative subnormal
	case exp == 0:
		return 1 << 5 // positive subnormal
	case sign:
		return 1 << 1 // negative normal
	}
	return 1 << 6 // positive normal
}
