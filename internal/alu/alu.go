// Package alu implements the arithmetic semantics of RV32IMF operations on
// 32-bit register values. The same functions back the functional simulator,
// the CPU timing model, and the accelerator's processing elements, so all
// execution engines in the reproduction compute bit-identical results.
//
// Floating-point values are carried as their IEEE-754 single-precision bit
// patterns in uint32, matching how the register file stores them.
package alu

import (
	"fmt"
	"math"

	"mesa/internal/isa"
)

// F32 converts a float32 to its bit pattern.
func F32(f float32) uint32 { return math.Float32bits(f) }

// ToF32 converts a bit pattern to a float32.
func ToF32(b uint32) float32 { return math.Float32frombits(b) }

// CanonicalNaN is the RISC-V canonical single-precision quiet NaN. Every
// arithmetic instruction that produces a NaN produces exactly this pattern
// (RISC-V ISA §11.3, "NaN Generation and Propagation"): input payloads are
// never propagated, which also keeps results identical across host
// architectures with different hardware NaN-propagation rules.
const CanonicalNaN = 0x7FC00000

// canonF32 rounds an arithmetic result to its bit pattern, replacing any NaN
// with the canonical quiet NaN.
func canonF32(f float32) uint32 {
	if f != f {
		return CanonicalNaN
	}
	return math.Float32bits(f)
}

// fma32 computes the correctly rounded fused a*b+c in float32, identically
// on every GOARCH (a Go float32 expression's multiply-add fusing is
// platform-dependent). The float64 promotions are exact and so is the
// product p (24-bit × 24-bit fits in 53 bits), reducing the FMA to the sum
// p+c of two binary64 values. float32(p+c) alone would double-round
// incorrectly — the exact sum can carry far more than 2·24+2 significand
// bits (e.g. denormal×huge + tiny addend), which is why a plain
// float32(math.FMA(...)) is subtly wrong — so the binary64 sum is corrected
// to round-to-odd via its exact TwoSum error term before the final binary32
// rounding (Boldo–Melquiond: rounding to odd at ≥ p+2 bits makes the second
// rounding exact).
func fma32(a, b, c float32) float32 {
	p := float64(a) * float64(b) // exact
	dc := float64(c)
	s := p + dc
	if math.IsInf(s, 0) || s != s {
		// Infinity and NaN semantics involve no rounding; overflow to ±inf
		// is far beyond binary32 range either way.
		return float32(s)
	}
	// TwoSum: t is the exact error of the sum, s + t == p + dc.
	pv := s - dc
	cv := s - pv
	t := (p - pv) + (dc - cv)
	if t != 0 && math.Float64bits(s)&1 == 0 {
		// Inexact sum with an even last bit: replace s with its neighbor
		// toward the exact value, making the last bit odd (round-to-odd).
		if t > 0 {
			s = math.Nextafter(s, math.Inf(1))
		} else {
			s = math.Nextafter(s, math.Inf(-1))
		}
	}
	return float32(s)
}

// Eval computes the result of a non-memory, non-control operation given its
// (up to three) source operand values. Operands for absent sources are
// ignored. For branches, use EvalBranch; for memory, the engines compute the
// effective address with EffAddr and perform the access themselves.
func Eval(op isa.Op, a, b, c uint32) (uint32, error) {
	sa, sb := int32(a), int32(b)
	switch op {
	case isa.OpADD, isa.OpADDI:
		return a + b, nil
	case isa.OpSUB:
		return a - b, nil
	case isa.OpSLL, isa.OpSLLI:
		return a << (b & 31), nil
	case isa.OpSLT, isa.OpSLTI:
		if sa < sb {
			return 1, nil
		}
		return 0, nil
	case isa.OpSLTU, isa.OpSLTIU:
		if a < b {
			return 1, nil
		}
		return 0, nil
	case isa.OpXOR, isa.OpXORI:
		return a ^ b, nil
	case isa.OpSRL, isa.OpSRLI:
		return a >> (b & 31), nil
	case isa.OpSRA, isa.OpSRAI:
		return uint32(sa >> (b & 31)), nil
	case isa.OpOR, isa.OpORI:
		return a | b, nil
	case isa.OpAND, isa.OpANDI:
		return a & b, nil
	case isa.OpLUI:
		return b, nil // immediate already holds the shifted value
	case isa.OpNOP:
		return 0, nil

	case isa.OpMUL:
		return uint32(sa * sb), nil
	case isa.OpMULH:
		return uint32(uint64(int64(sa)*int64(sb)) >> 32), nil
	case isa.OpMULHSU:
		return uint32(uint64(int64(sa)*int64(uint64(b))) >> 32), nil
	case isa.OpMULHU:
		return uint32(uint64(a) * uint64(b) >> 32), nil
	case isa.OpDIV:
		switch {
		case b == 0:
			return 0xFFFFFFFF, nil
		case a == 0x80000000 && b == 0xFFFFFFFF:
			return 0x80000000, nil
		}
		return uint32(sa / sb), nil
	case isa.OpDIVU:
		if b == 0 {
			return 0xFFFFFFFF, nil
		}
		return a / b, nil
	case isa.OpREM:
		switch {
		case b == 0:
			return a, nil
		case a == 0x80000000 && b == 0xFFFFFFFF:
			return 0, nil
		}
		return uint32(sa % sb), nil
	case isa.OpREMU:
		if b == 0 {
			return a, nil
		}
		return a % b, nil

	case isa.OpFADDS:
		return canonF32(ToF32(a) + ToF32(b)), nil
	case isa.OpFSUBS:
		return canonF32(ToF32(a) - ToF32(b)), nil
	case isa.OpFMULS:
		return canonF32(ToF32(a) * ToF32(b)), nil
	case isa.OpFDIVS:
		return canonF32(ToF32(a) / ToF32(b)), nil
	case isa.OpFSQRTS:
		return canonF32(float32(math.Sqrt(float64(ToF32(a))))), nil
	case isa.OpFMINS:
		return fminBits(a, b), nil
	case isa.OpFMAXS:
		return fmaxBits(a, b), nil
	// The FMA family negates operands, not the rounded result: FNMADD.S is
	// -(rs1×rs2)-rs3 computed fused, which differs from -(fma(rs1,rs2,rs3))
	// in the sign of exact zero results.
	case isa.OpFMADDS:
		return canonF32(fma32(ToF32(a), ToF32(b), ToF32(c))), nil
	case isa.OpFMSUBS:
		return canonF32(fma32(ToF32(a), ToF32(b), -ToF32(c))), nil
	case isa.OpFNMADDS:
		return canonF32(fma32(-ToF32(a), ToF32(b), -ToF32(c))), nil
	case isa.OpFNMSUBS:
		return canonF32(fma32(-ToF32(a), ToF32(b), ToF32(c))), nil

	case isa.OpFCVTWS:
		return uint32(int32(clampF64(float64(ToF32(a)), math.MinInt32, math.MaxInt32))), nil
	case isa.OpFCVTWUS:
		return uint32(clampF64(float64(ToF32(a)), 0, math.MaxUint32)), nil
	case isa.OpFCVTSW:
		return F32(float32(int32(a))), nil
	case isa.OpFCVTSWU:
		return F32(float32(a)), nil
	case isa.OpFMVXW, isa.OpFMVWX:
		return a, nil
	case isa.OpFSGNJS:
		return a&0x7FFFFFFF | b&0x80000000, nil
	case isa.OpFSGNJNS:
		return a&0x7FFFFFFF | ^b&0x80000000, nil
	case isa.OpFSGNJXS:
		return a ^ b&0x80000000, nil
	case isa.OpFEQS:
		if ToF32(a) == ToF32(b) {
			return 1, nil
		}
		return 0, nil
	case isa.OpFLTS:
		if ToF32(a) < ToF32(b) {
			return 1, nil
		}
		return 0, nil
	case isa.OpFLES:
		if ToF32(a) <= ToF32(b) {
			return 1, nil
		}
		return 0, nil
	case isa.OpFCLASSS:
		return fclass(ToF32(a)), nil
	}
	return 0, fmt.Errorf("alu: cannot evaluate %v", op)
}

// EvalBranch reports whether a conditional branch is taken given its two
// source operand values.
func EvalBranch(op isa.Op, a, b uint32) (bool, error) {
	sa, sb := int32(a), int32(b)
	switch op {
	case isa.OpBEQ:
		return a == b, nil
	case isa.OpBNE:
		return a != b, nil
	case isa.OpBLT:
		return sa < sb, nil
	case isa.OpBGE:
		return sa >= sb, nil
	case isa.OpBLTU:
		return a < b, nil
	case isa.OpBGEU:
		return a >= b, nil
	}
	return false, fmt.Errorf("alu: %v is not a branch", op)
}

// EffAddr computes the effective address of a load or store.
func EffAddr(base uint32, imm int32) uint32 { return base + uint32(imm) }

// fminBits and fmaxBits implement FMIN.S/FMAX.S (IEEE 754-2019
// minimumNumber/maximumNumber, RISC-V ISA §11.6): one NaN operand yields the
// other operand, two NaN operands yield the canonical NaN, and -0.0 is
// considered less than +0.0. They operate on bit patterns because the
// zero-sign rule and NaN canonicalization are invisible at float32 level.
func fminBits(a, b uint32) uint32 {
	switch {
	case isNaNBits(a) && isNaNBits(b):
		return CanonicalNaN
	case isNaNBits(a):
		return b
	case isNaNBits(b):
		return a
	}
	fa, fb := ToF32(a), ToF32(b)
	switch {
	case fa < fb:
		return a
	case fb < fa:
		return b
	}
	// Equal values: differing bit patterns only for ±0, where OR keeps the
	// sign bit — min(-0,+0) = -0.
	return a | b
}

func fmaxBits(a, b uint32) uint32 {
	switch {
	case isNaNBits(a) && isNaNBits(b):
		return CanonicalNaN
	case isNaNBits(a):
		return b
	case isNaNBits(b):
		return a
	}
	fa, fb := ToF32(a), ToF32(b)
	switch {
	case fa > fb:
		return a
	case fb > fa:
		return b
	}
	// Equal values: AND clears the sign bit for ±0 — max(-0,+0) = +0.
	return a & b
}

func isNaNBits(b uint32) bool { return b&0x7F800000 == 0x7F800000 && b&0x7FFFFF != 0 }

func clampF64(v, lo, hi float64) float64 {
	switch {
	case math.IsNaN(v):
		return hi
	case v < lo:
		return lo
	case v > hi:
		return hi
	}
	return v
}

// fclass implements the RISC-V FCLASS.S result mask.
func fclass(f float32) uint32 {
	bits := F32(f)
	sign := bits>>31 == 1
	exp := bits >> 23 & 0xFF
	frac := bits & 0x7FFFFF
	switch {
	case exp == 0xFF && frac != 0:
		if frac>>22 == 1 {
			return 1 << 9 // quiet NaN
		}
		return 1 << 8 // signaling NaN
	case exp == 0xFF && sign:
		return 1 << 0 // -inf
	case exp == 0xFF:
		return 1 << 7 // +inf
	case exp == 0 && frac == 0 && sign:
		return 1 << 3 // -0
	case exp == 0 && frac == 0:
		return 1 << 4 // +0
	case exp == 0 && sign:
		return 1 << 2 // negative subnormal
	case exp == 0:
		return 1 << 5 // positive subnormal
	case sign:
		return 1 << 1 // negative normal
	}
	return 1 << 6 // positive normal
}
