// Package mesa holds the repository-level benchmark harness: one
// testing.B benchmark per table and figure of the paper's evaluation, plus
// microbenchmarks of the pipeline stages. Custom metrics report the headline
// numbers (speedups, efficiency gains, configuration latency) so
// `go test -bench=. -benchmem` regenerates the evaluation.
package mesa

import (
	"testing"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/cpu"
	"mesa/internal/experiments"
	"mesa/internal/isa"
	"mesa/internal/kernels"
	"mesa/internal/mem"
	"mesa/internal/sim"
)

// BenchmarkFigure11 regenerates the headline comparison: M-128/M-512
// performance and energy efficiency vs the 16-core CPU.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeomeanSpeedupM128, "speedup-M128")
		b.ReportMetric(r.GeomeanSpeedupM512, "speedup-M512")
		b.ReportMetric(r.GeomeanEnergyM128, "energyeff-M128")
		b.ReportMetric(r.GeomeanEnergyM512, "energyeff-M512")
	}
}

// BenchmarkFigure12 regenerates the OpenCGRA IPC comparison.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeomeanNoOptRatio, "ipc-ratio-noopt")
		b.ReportMetric(r.GeomeanOptRatio, "ipc-ratio-opt")
	}
}

// BenchmarkFigure13 regenerates the energy breakdown.
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.ComputeMemoryFrac(), "compute+mem-%")
	}
}

// BenchmarkFigure14 regenerates the single-core / DynaSpAM comparison.
func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure14()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeomeanM64, "speedup-M64")
		b.ReportMetric(r.GeomeanM64Iter, "speedup-M64-iter")
		b.ReportMetric(r.GeomeanDyna, "speedup-dynaspam")
	}
}

// BenchmarkFigure15 regenerates the PE-scaling study.
func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure15()
		if err != nil {
			b.Fatal(err)
		}
		last := r.Points[len(r.Points)-1]
		b.ReportMetric(last.Default, "speedup-512PE")
		b.ReportMetric(last.IdealMemory, "speedup-512PE-idealmem")
	}
}

// BenchmarkFigure16 regenerates the energy-amortization study.
func BenchmarkFigure16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure16()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.AmortizedAt), "amortized-at-iters")
		b.ReportMetric(r.SteadyNJ, "steady-nJ/iter")
	}
}

// BenchmarkTable2ConfigLatency regenerates the configuration-latency
// measurement across the suite.
func BenchmarkTable2ConfigLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.MinCycles), "min-config-cycles")
		b.ReportMetric(float64(r.MaxCycles), "max-config-cycles")
	}
}

// BenchmarkAblations regenerates the design-choice ablation studies
// (candidate window, tie-break, memory optimizations, interconnect).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		win, err := experiments.WindowAblation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(win[1].GeomeanModeledIter, "iterlat-4x8")
		b.ReportMetric(win[3].GeomeanModeledIter, "iterlat-full")
		mo, err := experiments.MemOptAblation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mo[len(mo)-1].GeomeanSpeedup, "memopt-speedup")
	}
}

// BenchmarkTimeShareExtension measures srad on M-64 with the 2-way
// time-multiplexing extension (unmappable without it).
func BenchmarkTimeShareExtension(b *testing.B) {
	k, err := kernels.ByName("srad")
	if err != nil {
		b.Fatal(err)
	}
	prog, loopStart := k.MustProgram()
	for i := 0; i < b.N; i++ {
		be := accel.M64()
		opts := core.DefaultOptions(be)
		opts.MapperOpts.TimeShare = 2
		opts.Detector.MaxInsts = 0
		opts.Detector.ParallelLoops = map[uint32]bool{loopStart: true}
		ctl := core.NewController(opts)
		hier := mem.MustHierarchy(mem.DefaultHierarchy())
		report, _, err := ctl.Run(prog, k.NewMemory(experiments.Seed), hier, 50_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if len(report.Regions) == 0 {
			b.Fatal("srad did not map with time sharing")
		}
		b.ReportMetric(report.Regions[0].FinalII, "II-cycles")
	}
}

// --- Pipeline-stage microbenchmarks ---

func nnRegion(b *testing.B) ([]isa.Inst, *accel.Config) {
	b.Helper()
	k, err := kernels.ByName("nn")
	if err != nil {
		b.Fatal(err)
	}
	prog, loopStart := k.MustProgram()
	var end uint32
	for _, in := range prog.Insts {
		if in.IsBackwardBranch() && in.BranchTarget() == loopStart {
			end = in.Addr + 4
		}
	}
	return prog.Slice(loopStart, end), accel.M128()
}

// BenchmarkLDFGBuild measures T1: instruction renaming into the LDFG.
func BenchmarkLDFGBuild(b *testing.B) {
	body, be := nnRegion(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildLDFG(body, be.EstimateLat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpatialMapping measures T2: Algorithm 1 over the LDFG.
func BenchmarkSpatialMapping(b *testing.B) {
	body, be := nnRegion(b)
	l, err := core.BuildLDFG(body, be.EstimateLat)
	if err != nil {
		b.Fatal(err)
	}
	mapper := core.NewMapper(core.DefaultMapperOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mapper.Map(l, be); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccelIteration measures one dataflow iteration on the array.
func BenchmarkAccelIteration(b *testing.B) {
	k, err := kernels.ByName("nn")
	if err != nil {
		b.Fatal(err)
	}
	body, be := nnRegion(b)
	l, err := core.BuildLDFG(body, be.EstimateLat)
	if err != nil {
		b.Fatal(err)
	}
	s, _, err := core.NewMapper(core.DefaultMapperOptions()).Map(l, be)
	if err != nil {
		b.Fatal(err)
	}
	memory := k.NewMemory(experiments.Seed)
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	engine, err := accel.NewEngine(be, l.Graph, s.Pos, l.LoopBranch, memory, hier)
	if err != nil {
		b.Fatal(err)
	}
	var regs [isa.NumRegs]uint32
	regs[isa.RegA0] = kernels.ArrA
	regs[isa.RegA1] = kernels.ArrB
	regs[isa.RegA2] = kernels.ArrOut
	regs[isa.RegT1] = 1 << 30
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.RunIteration(&regs); err != nil {
			b.Fatal(err)
		}
	}
}

// kernelLoopEngine builds an accelerator engine for k's hot loop plus the
// architectural register state at first loop entry (obtained by functionally
// simulating up to the loop head, the same state the controller would offload
// with). ok is false when the kernel's loop does not map directly onto M-128
// at this pipeline stage.
func kernelLoopEngine(b *testing.B, k *kernels.Kernel) (*accel.Engine, [isa.NumRegs]uint32, bool) {
	b.Helper()
	prog, loopStart := k.MustProgram()
	var end uint32
	for _, in := range prog.Insts {
		if in.IsBackwardBranch() && in.BranchTarget() == loopStart {
			end = in.Addr + 4
		}
	}
	if end == 0 {
		return nil, [isa.NumRegs]uint32{}, false
	}
	machine := sim.New(prog, k.NewMemory(experiments.Seed))
	for steps := 0; machine.PC != loopStart; steps++ {
		if machine.Halted || steps > 1_000_000 {
			return nil, [isa.NumRegs]uint32{}, false
		}
		if err := machine.Step(); err != nil {
			return nil, [isa.NumRegs]uint32{}, false
		}
	}
	be := accel.M128()
	l, err := core.BuildLDFG(prog.Slice(loopStart, end), be.EstimateLat)
	if err != nil {
		return nil, [isa.NumRegs]uint32{}, false
	}
	s, _, err := core.NewMapper(core.DefaultMapperOptions()).Map(l, be)
	if err != nil {
		return nil, [isa.NumRegs]uint32{}, false
	}
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	engine, err := accel.NewEngine(be, l.Graph, s.Pos, l.LoopBranch, machine.Mem, hier)
	if err != nil {
		return nil, [isa.NumRegs]uint32{}, false
	}
	return engine, machine.Regs, true
}

// BenchmarkRunIteration measures the per-iteration simulation cost of every
// kernel's hot loop on M-128. With -benchmem it doubles as the
// allocation-free evidence: the untraced path must report 0 allocs/op (also
// pinned by TestRunIterationZeroAllocs in internal/accel).
func BenchmarkRunIteration(b *testing.B) {
	for _, k := range kernels.All() {
		b.Run(k.Name, func(b *testing.B) {
			engine, entry, ok := kernelLoopEngine(b, k)
			if !ok {
				b.Skipf("%s: hot loop does not map directly on M-128", k.Name)
			}
			regs := entry
			if _, err := engine.RunIteration(&regs); err != nil {
				b.Skipf("%s: loop region not executable standalone: %v", k.Name, err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := engine.RunIteration(&regs)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Continue {
					// Loop completed: restart from the entry state (timing
					// behaviour is identical, the data has simply advanced).
					regs = entry
				}
			}
		})
	}
}

// BenchmarkBatchRunLoop measures the steady-state cost of stepping eight
// independent nn-loop simulations in lockstep on one BatchEngine. With
// -benchmem it doubles as the allocation-free evidence for the batched hot
// path: 0 allocs/op (also pinned by TestBatchStepZeroAllocs in
// internal/accel). Each lane gets its own LDFG, placement, and memory —
// only the stepping loop and the SoA state blocks are shared.
func BenchmarkBatchRunLoop(b *testing.B) {
	k, err := kernels.ByName("nn")
	if err != nil {
		b.Fatal(err)
	}
	const nLanes = 8
	lanes := make([]accel.BatchLane, nLanes)
	regs := make([][isa.NumRegs]uint32, nLanes)
	for i := range lanes {
		body, be := nnRegion(b)
		l, err := core.BuildLDFG(body, be.EstimateLat)
		if err != nil {
			b.Fatal(err)
		}
		s, _, err := core.NewMapper(core.DefaultMapperOptions()).Map(l, be)
		if err != nil {
			b.Fatal(err)
		}
		lanes[i] = accel.BatchLane{
			Cfg: be, G: l.Graph, Pos: s.Pos, LoopBranch: l.LoopBranch,
			Mem: k.NewMemory(experiments.Seed), Hier: mem.MustHierarchy(mem.DefaultHierarchy()),
		}
		regs[i][isa.RegA0] = kernels.ArrA
		regs[i][isa.RegA1] = kernels.ArrB
		regs[i][isa.RegA2] = kernels.ArrOut
		regs[i][isa.RegT1] = 1 << 30
	}
	eng, err := accel.NewBatchEngine(lanes)
	if err != nil {
		b.Fatal(err)
	}
	runs := make([]accel.LaneRun, nLanes)
	start := func() {
		for i := range runs {
			runs[i] = accel.LaneRun{Lane: i, Regs: &regs[i]}
		}
		if err := eng.StartLoops(runs); err != nil {
			b.Fatal(err)
		}
	}
	start()
	// Warm once so one-time growth (store-buffer backing arrays) is excluded.
	if _, err := eng.Step(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		active, err := eng.Step()
		if err != nil {
			b.Fatal(err)
		}
		if active == 0 {
			// All lanes retired their loops: restart outside the timer.
			b.StopTimer()
			start()
			b.StartTimer()
		}
	}
	b.ReportMetric(nLanes, "lanes")
}

// BenchmarkFullSweep measures the end-to-end evaluation sweep — every figure,
// Table 2, and the benchmark snapshot collection — from a cold
// simulation-result cache each iteration (within one iteration the cache
// deduplicates shared configurations exactly as mesabench does).
func BenchmarkFullSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.ResetSimMemo()
		if _, err := experiments.Figure11(); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Figure12(); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Figure13(); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Figure14(); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Figure15(); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Figure16(); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Table2(); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.CollectBench(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionalSim measures raw interpreter throughput.
func BenchmarkFunctionalSim(b *testing.B) {
	k, err := kernels.ByName("nn")
	if err != nil {
		b.Fatal(err)
	}
	prog, _ := k.MustProgram()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		machine := sim.New(prog, k.NewMemory(experiments.Seed))
		n, err := machine.Run(50_000_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(n), "insts/op")
	}
}

// BenchmarkCPUTimingModel measures the trace-driven OoO model.
func BenchmarkCPUTimingModel(b *testing.B) {
	k, err := kernels.ByName("nn")
	if err != nil {
		b.Fatal(err)
	}
	prog, _ := k.MustProgram()
	cfg := cpu.DefaultBOOM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hier := mem.MustHierarchy(mem.DefaultHierarchy())
		if _, err := cpu.Time(cfg, prog, k.NewMemory(experiments.Seed), hier, 50_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndOffload measures the complete controller flow on one
// kernel (detection, mapping, offload, optimization).
func BenchmarkEndToEndOffload(b *testing.B) {
	k, err := kernels.ByName("kmeans")
	if err != nil {
		b.Fatal(err)
	}
	prog, loopStart := k.MustProgram()
	be := accel.M128()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := core.DefaultOptions(be)
		opts.Detector.ParallelLoops = map[uint32]bool{loopStart: true}
		ctl := core.NewController(opts)
		hier := mem.MustHierarchy(mem.DefaultHierarchy())
		if _, _, err := ctl.Run(prog, k.NewMemory(experiments.Seed), hier, 50_000_000); err != nil {
			b.Fatal(err)
		}
	}
}
