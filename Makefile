# Pre-merge checks for the MESA reproduction.
#
#   make ci          # everything a PR must pass: vet + test + test-race + bench-check
#   make test        # tier-1: go build + go test
#   make test-race   # the sweep fan-out must be race-clean
#   make bench       # run the Go benchmarks once with -benchmem (allocation counts)
#   make bench-json  # write the current performance snapshot to BENCH.json
#   make bench-check # regression-gate the snapshot against BENCH_baseline.json
#   make bench-attrib# write the suite-wide bottleneck attribution to ATTRIB.json
#
# When a PR intentionally changes performance, refresh the committed
# baseline with `make bench-baseline` and include the diff in the PR.

GO ?= go
BENCH_TOL ?= 0.02

.PHONY: ci build vet test test-race bench bench-json bench-check bench-baseline bench-attrib

ci: vet test test-race bench-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -benchmem -run '^$$' .

bench-json:
	$(GO) run ./cmd/mesabench -out BENCH.json

bench-check:
	$(GO) run ./cmd/mesabench -check BENCH_baseline.json -tol $(BENCH_TOL) -out BENCH.json

bench-baseline:
	$(GO) run ./cmd/mesabench -out BENCH_baseline.json

bench-attrib:
	$(GO) run ./cmd/mesabench -json attrib > ATTRIB.json
