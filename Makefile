# Pre-merge checks for the MESA reproduction.
#
#   make ci          # everything a PR must pass: vet + test + test-race
#   make test        # tier-1: go build + go test
#   make test-race   # the sweep fan-out must be race-clean

GO ?= go

.PHONY: ci build vet test test-race bench

ci: vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
