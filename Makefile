# Pre-merge checks for the MESA reproduction.
#
#   make ci          # everything a PR must pass: vet + lint + test + test-race + bench-check
#   make lint        # staticcheck (pinned version; skipped with a notice when unavailable offline)
#   make test        # tier-1: go build + go test
#   make test-race   # the sweep fan-out must be race-clean
#   make fuzz-smoke  # 10s of each Go fuzz target (differential, FP spec, ISA round-trip)
#   make mesad-smoke # mesad end-to-end self-test: serve, load-generate, scrape /metrics
#   make bench       # run the Go benchmarks once with -benchmem (allocation counts)
#   make bench-batch # smoke the batched lockstep engine: BenchmarkBatchRunLoop
#                    # into batch-bench.out, failing unless it is 0 allocs/op
#   make bench-json  # write the current performance snapshot to BENCH.json
#   make bench-check # regression-gate the snapshot against BENCH_baseline.json
#   make bench-attrib# write the suite-wide bottleneck attribution to ATTRIB.json
#   make bench-mappers # run the mapper-strategy ablation (greedy/anneal/
#                    # congestion/modulo/auto) and write MAPPERS.json
#
# When a PR intentionally changes performance, refresh the committed
# baseline with `make bench-baseline` and include the diff in the PR.

GO ?= go
BENCH_TOL ?= 0.02
# Pinned so every machine lints with the same rule set; bump deliberately.
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: ci build vet lint test test-race fuzz-smoke mesad-smoke bench bench-batch bench-json bench-check bench-baseline bench-attrib bench-mappers

ci: vet lint test test-race fuzz-smoke mesad-smoke bench-check bench-mappers

# Prefer a staticcheck already on PATH (matching any version is better than
# nothing), else fetch the pinned version via `go run`. Offline sandboxes
# have neither; skip with a notice rather than failing the whole gate on a
# network error.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	else \
		echo "lint: staticcheck unavailable (offline?); skipping"; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Bounded runs of every native fuzz target. The committed corpora replay in
# plain `make test`; this additionally explores new inputs for a few seconds
# per target, which is enough to catch gross regressions in the differential
# harness itself without making CI wall time unpredictable.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/alu -run '^$$' -fuzz '^FuzzFPSpec$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/isa -run '^$$' -fuzz '^FuzzDecodeEncode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/genkern -run '^$$' -fuzz '^FuzzDifferential$$' -fuzztime $(FUZZTIME)

# End-to-end self-test of the mesad service binary: serve on a loopback
# port, run the load generator cold and warm (every response byte-compared
# against the direct library call), scrape /metrics as JSON and as a
# Prometheus exposition (validated line by line with the strict parser),
# check /healthz and /debug/requests, write one flight-recorder trace to
# mesad-trace.json (a CI artifact), drain, exit.
mesad-smoke:
	$(GO) run ./cmd/mesad -smoke -smoke-trace mesad-trace.json

bench:
	$(GO) test -bench . -benchtime 1x -benchmem -run '^$$' .

# Steady-state smoke of the batched data-parallel engine: enough timed steps
# for the allocation accounting to be meaningful, gated on the 0 allocs/op
# invariant the SoA hot path guarantees. batch-bench.out is a CI artifact.
bench-batch:
	$(GO) test -bench '^BenchmarkBatchRunLoop$$' -benchtime 20000x -benchmem -run '^$$' . | tee batch-bench.out
	@grep -E '\s0 allocs/op' batch-bench.out >/dev/null || \
		{ echo "bench-batch: BenchmarkBatchRunLoop is not allocation-free"; exit 1; }

bench-json:
	$(GO) run ./cmd/mesabench -out BENCH.json

# -batch 8 warms the sweep through the batched lockstep engine and records
# the measured batch.* wall metrics (lanes, scalar vs batched sweep seconds,
# speedup) in the snapshot. They are host-dependent, so CompareBench excludes
# the batch.* prefix from the regression gate in both directions.
bench-check:
	$(GO) run ./cmd/mesabench -batch 8 -check BENCH_baseline.json -tol $(BENCH_TOL) -out BENCH.json

bench-baseline:
	$(GO) run ./cmd/mesabench -batch 8 -out BENCH_baseline.json

bench-attrib:
	$(GO) run ./cmd/mesabench -json attrib > ATTRIB.json

# The extended mapper-strategy ablation (greedy seed, annealing, congestion,
# modulo scheduling, attribution-driven auto selection) as structured JSON.
# MAPPERS.json is a CI artifact; the rendered table is in `mesabench mappers`.
bench-mappers:
	$(GO) run ./cmd/mesabench -json mappers > MAPPERS.json
