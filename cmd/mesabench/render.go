package main

import "mesa/internal/experiments"

func renderTable1() (string, error) {
	return experiments.Table1().Render(), nil
}

func renderTable2() (string, error) {
	r, err := experiments.Table2()
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

func renderFigure2() (string, error) {
	return experiments.Figure2().Render(), nil
}

func renderFigure4() (string, error) {
	r, err := experiments.Figure4()
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

func renderFigure8() (string, error) {
	r, err := experiments.Figure8()
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

func renderFigure11() (string, error) {
	r, err := experiments.Figure11()
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

func renderFigure12() (string, error) {
	r, err := experiments.Figure12()
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

func renderFigure13() (string, error) {
	r, err := experiments.Figure13()
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

func renderFigure14() (string, error) {
	r, err := experiments.Figure14()
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

func renderFigure15() (string, error) {
	r, err := experiments.Figure15()
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

func renderFigure16() (string, error) {
	r, err := experiments.Figure16()
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

func renderAblations() (string, error) {
	return experiments.RenderAblations()
}

func renderMappers() (string, error) {
	r, err := experiments.Mappers()
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

func renderAttrib() (string, error) {
	r, err := experiments.Attrib()
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// Structured (-json) variants.

func dataTable1() (any, error)   { return experiments.Table1(), nil }
func dataFigure2() (any, error)  { return experiments.Figure2(), nil }
func dataFigure4() (any, error)  { return experiments.Figure4() }
func dataFigure8() (any, error)  { return experiments.Figure8() }
func dataTable2() (any, error)   { return experiments.Table2() }
func dataFigure11() (any, error) { return experiments.Figure11() }
func dataFigure12() (any, error) { return experiments.Figure12() }
func dataFigure13() (any, error) { return experiments.Figure13() }
func dataFigure14() (any, error) { return experiments.Figure14() }
func dataFigure15() (any, error) { return experiments.Figure15() }
func dataFigure16() (any, error) { return experiments.Figure16() }
func dataAttrib() (any, error)   { return experiments.Attrib() }
func dataMappers() (any, error)  { return experiments.Mappers() }

func dataAblations() (any, error) {
	win, err := experiments.WindowAblation()
	if err != nil {
		return nil, err
	}
	tie, err := experiments.TieBreakAblation()
	if err != nil {
		return nil, err
	}
	mo, err := experiments.MemOptAblation()
	if err != nil {
		return nil, err
	}
	fa, err := experiments.ForwardingAblation()
	if err != nil {
		return nil, err
	}
	ic, err := experiments.InterconnectAblation()
	if err != nil {
		return nil, err
	}
	ts, err := experiments.TimeShareAblation()
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"window": win, "tiebreak": tie, "memopts": mo,
		"forwarding": fa, "interconnect": ic, "timeshare": ts,
	}, nil
}
