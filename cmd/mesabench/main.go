// Command mesabench regenerates every table and figure of the paper's
// evaluation section and prints them to stdout.
//
// Usage:
//
//	mesabench                 # run everything
//	mesabench fig11           # run one experiment: fig2, fig8, fig11..fig16, table1, table2
//	mesabench -parallel 8     # fan the sweeps out over 8 workers
//	mesabench -json fig12     # structured output
//	mesabench -stats s.json   # also write a worker pool metrics report
//
// The -stats report contains only worker-count-invariant counters, so it is
// byte-identical between -parallel 1 and -parallel N (like the experiment
// output itself).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"mesa/internal/experiments"
	"mesa/internal/obs"
)

type experiment struct {
	name string
	run  func() (string, error)
	data func() (any, error) // structured result for -json
}

var all = []experiment{
	{"table1", renderTable1, dataTable1},
	{"fig2", renderFigure2, dataFigure2},
	{"fig4", renderFigure4, dataFigure4},
	{"fig8", renderFigure8, dataFigure8},
	{"table2", renderTable2, dataTable2},
	{"fig11", renderFigure11, dataFigure11},
	{"fig12", renderFigure12, dataFigure12},
	{"fig13", renderFigure13, dataFigure13},
	{"fig14", renderFigure14, dataFigure14},
	{"fig15", renderFigure15, dataFigure15},
	{"fig16", renderFigure16, dataFigure16},
	{"ablations", renderAblations, dataAblations},
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "usage: mesabench [flags] [experiment ...]\n")
	fmt.Fprintf(flag.CommandLine.Output(), "available experiments:")
	for _, e := range all {
		fmt.Fprintf(flag.CommandLine.Output(), " %s", e.name)
	}
	fmt.Fprintln(flag.CommandLine.Output())
	flag.PrintDefaults()
}

func main() {
	asJSON := flag.Bool("json", false, "emit structured JSON instead of rendered tables")
	statsFile := flag.String("stats", "", "write a unified metrics report as JSON to this file")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker count for the experiment sweeps; 1 runs everything serially")
	flag.Usage = usage
	flag.Parse() // exits 2 with usage on unrecognized flags

	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "mesabench: invalid -parallel %d\n", *parallel)
		usage()
		os.Exit(2)
	}
	experiments.SetWorkers(*parallel)

	selected := map[string]bool{}
	for _, arg := range flag.Args() {
		selected[strings.ToLower(arg)] = true
	}
	known := map[string]bool{}
	for _, e := range all {
		known[e.name] = true
	}
	for name := range selected {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "mesabench: unknown experiment %q\n", name)
			usage()
			os.Exit(2)
		}
	}

	var chosen []experiment
	for _, e := range all {
		if len(selected) == 0 || selected[e.name] {
			chosen = append(chosen, e)
		}
	}

	if *asJSON {
		// Experiments are independent; fan them out and assemble the object
		// afterwards so the output does not depend on completion order.
		values, err := experiments.Run(context.Background(), *parallel, len(chosen),
			func(_ context.Context, i int) (any, error) {
				v, err := chosen[i].data()
				if err != nil {
					return nil, fmt.Errorf("%s: %w", chosen[i].name, err)
				}
				return v, nil
			})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mesabench: %v\n", err)
			os.Exit(1)
		}
		results := map[string]any{}
		for i, e := range chosen {
			results[e.name] = values[i]
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "mesabench:", err)
			os.Exit(1)
		}
		writeStats(*statsFile, chosen)
		return
	}

	type rendered struct {
		out     string
		seconds float64
	}
	outputs, err := experiments.Run(context.Background(), *parallel, len(chosen),
		func(_ context.Context, i int) (rendered, error) {
			start := time.Now()
			out, err := chosen[i].run()
			if err != nil {
				return rendered{}, fmt.Errorf("%s: %w", chosen[i].name, err)
			}
			return rendered{out: out, seconds: time.Since(start).Seconds()}, nil
		})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mesabench: %v\n", err)
		os.Exit(1)
	}
	for i, e := range chosen {
		fmt.Printf("==== %s (%.2fs) ====\n%s\n", e.name, outputs[i].seconds, outputs[i].out)
	}
	writeStats(*statsFile, chosen)
}

// writeStats emits the unified metrics report for a bench run. Wall-clock
// durations are deliberately excluded: every value here is deterministic and
// worker-count-invariant, so the file byte-compares across -parallel
// settings. Errors are fatal — the user asked for the file.
func writeStats(path string, chosen []experiment) {
	if path == "" {
		return
	}
	reg := obs.NewRegistry()
	reg.Add("bench",
		obs.M("experiments", float64(len(chosen))),
	)
	reg.Add("experiments.pool", experiments.PoolMetrics()...)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mesabench:", err)
		os.Exit(1)
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "mesabench:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "mesabench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "stats: metrics report written to %s\n", path)
}
