// Command mesabench regenerates every table and figure of the paper's
// evaluation section and prints them to stdout, and maintains the
// machine-readable performance baseline of the suite.
//
// Usage:
//
//	mesabench                 # run everything
//	mesabench fig11           # one experiment: fig2, fig8, fig11..fig16, table1, table2, attrib
//	mesabench -parallel 8     # fan the sweeps out over 8 workers
//	mesabench -batch 8        # step up to 8 simulations in lockstep on one batched engine
//	mesabench -json fig12     # structured output
//	mesabench -stats s.json   # also write a worker pool + sim-cache metrics report
//	mesabench -nocache        # disable the simulation-result cache (every run cold)
//	mesabench -cache-size 64  # bound the in-memory result LRU (0 = unbounded)
//	mesabench -cache-dir d/   # persist CPU-timing results on disk across runs
//	mesabench -mapper greedy+anneal   # placement strategy for every MESA run
//	mesabench mappers         # mapper-strategy ablation table
//	mesabench fuzz -seeds 500 # differential fuzzing sweep (see fuzz.go)
//
//	mesabench -out BENCH.json                        # write a schema-versioned perf snapshot
//	mesabench -check BENCH_baseline.json -tol 0.02   # exit non-zero on any metric regression
//	mesabench -cpuprofile cpu.pprof -memprofile mem.pprof
//
// -out/-check run the benchmark snapshot collection (per-kernel CPU and
// accelerator cycles, configuration latency, per-figure speedup and energy
// aggregates) instead of the rendered experiments; pass experiment names as
// well to also run those. -check compares every baseline metric
// direction-aware (speedups regress downward, cycle counts upward) and
// exits 1 with a per-metric diff table when any regresses beyond -tol.
//
// The -stats report is byte-identical between -parallel 1 and -parallel N
// (like the experiment output itself, BENCH metrics included; the snapshot's
// wall_seconds field is the one host-dependent value and is never compared)
// — with two caveats. First, sim_cache_entries and sim_cache_evictions are
// worker-count-invariant only while nothing is evicted: at the default
// -cache-size the bench working set fits, so they stay invariant; bounding
// the cache below the working set makes eviction order (and therefore those
// two counters) depend on concurrent insert order. Second, the
// experiments.timing section holds wall-clock histogram summaries, which
// are host- and scheduling-dependent by nature. Determinism checks exclude
// exactly the declared variant set (experiments.StatsVariantMetricNames).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mesa/internal/experiments"
	"mesa/internal/mapping"
	"mesa/internal/obs"
)

type experiment struct {
	name string
	run  func() (string, error)
	data func() (any, error) // structured result for -json
}

var all = []experiment{
	{"table1", renderTable1, dataTable1},
	{"fig2", renderFigure2, dataFigure2},
	{"fig4", renderFigure4, dataFigure4},
	{"fig8", renderFigure8, dataFigure8},
	{"table2", renderTable2, dataTable2},
	{"fig11", renderFigure11, dataFigure11},
	{"fig12", renderFigure12, dataFigure12},
	{"fig13", renderFigure13, dataFigure13},
	{"fig14", renderFigure14, dataFigure14},
	{"fig15", renderFigure15, dataFigure15},
	{"fig16", renderFigure16, dataFigure16},
	{"ablations", renderAblations, dataAblations},
	{"mappers", renderMappers, dataMappers},
	{"attrib", renderAttrib, dataAttrib},
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "usage: mesabench [flags] [experiment ...]\n")
	fmt.Fprintf(flag.CommandLine.Output(), "available experiments:")
	for _, e := range all {
		fmt.Fprintf(flag.CommandLine.Output(), " %s", e.name)
	}
	fmt.Fprintln(flag.CommandLine.Output())
	flag.PrintDefaults()
}

// config collects the parsed command line.
type config struct {
	asJSON    bool
	statsFile string
	outFile   string
	checkFile string
	tol       float64
	parallel  int
	batch     int
	noCache   bool
	chosen    []experiment
}

func main() {
	// Subcommands take the first argument slot and own their flag sets.
	if len(os.Args) > 1 && os.Args[1] == "fuzz" {
		os.Exit(runFuzz(os.Args[2:]))
	}

	asJSON := flag.Bool("json", false, "emit structured JSON instead of rendered tables")
	statsFile := flag.String("stats", "", "write a unified metrics report as JSON to this file")
	outFile := flag.String("out", "", "write a schema-versioned benchmark snapshot as JSON to this file")
	checkFile := flag.String("check", "", "compare the run against this baseline snapshot and exit non-zero on regression")
	tol := flag.Float64("tol", 0.02, "relative tolerance for -check (0.02 = 2%)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker count for the experiment sweeps; 1 runs everything serially")
	batch := flag.Int("batch", 0,
		"lane count for the batched lockstep engine warming the MESA sweeps; 0 or 1 = scalar engines")
	noCache := flag.Bool("nocache", false,
		"disable the cross-experiment simulation-result cache (every simulation runs cold)")
	cacheSize := flag.Int("cache-size", experiments.DefaultSimMemoCapacity,
		"bound on the in-memory simulation-result LRU (0 = unbounded)")
	cacheDir := flag.String("cache-dir", "",
		"content-addressed on-disk store for CPU-timing results; warm results survive across runs (empty = memory only)")
	mapper := flag.String("mapper", mapping.Default().Name(),
		"placement strategy for MESA runs ("+strings.Join(mapping.Names(), ", ")+")")
	flag.Usage = usage
	flag.Parse() // exits 2 with usage on unrecognized flags

	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "mesabench: invalid -parallel %d\n", *parallel)
		usage()
		os.Exit(2)
	}
	if *batch < 0 {
		fmt.Fprintf(os.Stderr, "mesabench: invalid -batch %d\n", *batch)
		usage()
		os.Exit(2)
	}
	experiments.SetWorkers(*parallel)
	strat, err := mapping.ByName(*mapper)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mesabench: %v\n", err)
		usage()
		os.Exit(2)
	}
	experiments.SetMapperStrategy(strat)
	experiments.SetSimMemoCapacity(*cacheSize)
	if err := experiments.SetSimMemoDir(*cacheDir); err != nil {
		fmt.Fprintf(os.Stderr, "mesabench: %v\n", err)
		os.Exit(1)
	}

	selected := map[string]bool{}
	for _, arg := range flag.Args() {
		selected[strings.ToLower(arg)] = true
	}
	known := map[string]bool{}
	for _, e := range all {
		known[e.name] = true
	}
	for name := range selected {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "mesabench: unknown experiment %q\n", name)
			usage()
			os.Exit(2)
		}
	}

	cfg := config{
		asJSON: *asJSON, statsFile: *statsFile,
		outFile: *outFile, checkFile: *checkFile, tol: *tol,
		parallel: *parallel, batch: *batch, noCache: *noCache,
	}
	// -out/-check run the snapshot collection; experiments run only when
	// named explicitly alongside them.
	benchOnly := (cfg.outFile != "" || cfg.checkFile != "") && len(selected) == 0
	if !benchOnly {
		for _, e := range all {
			if len(selected) == 0 || selected[e.name] {
				cfg.chosen = append(cfg.chosen, e)
			}
		}
	}

	// os.Exit skips defers, and the CPU profile must be flushed on every
	// path, so the exit code is decided inside realMain.
	os.Exit(realMain(cfg, *cpuProfile, *memProfile))
}

func realMain(cfg config, cpuProfile, memProfile string) int {
	if cfg.noCache {
		experiments.SetSimMemoEnabled(false)
		defer experiments.SetSimMemoEnabled(true)
	}
	if cfg.batch >= 2 {
		// Snapshot collection appends the batch.* wall metrics when batching
		// was requested (they are excluded from -check comparisons).
		prevLanes := experiments.SetBenchBatchLanes(cfg.batch)
		defer experiments.SetBenchBatchLanes(prevLanes)
		// Warm the shared simulation cache with one batched sweep; every
		// experiment below then renders from entries byte-identical to the
		// scalar ones (the batch differential tests pin that). With -nocache
		// nothing could be reused, so the warmup is skipped.
		if !cfg.noCache {
			experiments.RunMESABatch(experiments.DefaultSweepPoints(), cfg.batch)
		}
	}
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mesabench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "mesabench:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mesabench:", err)
			}
		}()
	}

	code := 0
	if err := runExperiments(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "mesabench:", err)
		code = 1
	}
	if code == 0 && (cfg.outFile != "" || cfg.checkFile != "") {
		regressed, err := runBench(cfg)
		switch {
		case err != nil:
			fmt.Fprintln(os.Stderr, "mesabench:", err)
			code = 1
		case regressed:
			code = 1
		}
	}
	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mesabench:", err)
			return 1
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "mesabench:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mesabench:", err)
			return 1
		}
	}
	return code
}

// runExperiments renders (or JSON-encodes) the chosen experiments and the
// optional -stats report.
func runExperiments(cfg config) error {
	if len(cfg.chosen) == 0 {
		return nil
	}
	if cfg.asJSON {
		// Experiments are independent; fan them out and assemble the object
		// afterwards so the output does not depend on completion order.
		values, err := experiments.Run(context.Background(), cfg.parallel, len(cfg.chosen),
			func(_ context.Context, i int) (any, error) {
				v, err := cfg.chosen[i].data()
				if err != nil {
					return nil, fmt.Errorf("%s: %w", cfg.chosen[i].name, err)
				}
				return v, nil
			})
		if err != nil {
			return err
		}
		results := map[string]any{}
		for i, e := range cfg.chosen {
			results[e.name] = values[i]
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			return err
		}
		return writeStats(cfg.statsFile, cfg.chosen)
	}

	type rendered struct {
		out     string
		seconds float64
	}
	outputs, err := experiments.Run(context.Background(), cfg.parallel, len(cfg.chosen),
		func(_ context.Context, i int) (rendered, error) {
			start := time.Now()
			out, err := cfg.chosen[i].run()
			if err != nil {
				return rendered{}, fmt.Errorf("%s: %w", cfg.chosen[i].name, err)
			}
			return rendered{out: out, seconds: time.Since(start).Seconds()}, nil
		})
	if err != nil {
		return err
	}
	for i, e := range cfg.chosen {
		fmt.Printf("==== %s (%.2fs) ====\n%s\n", e.name, outputs[i].seconds, outputs[i].out)
	}
	return writeStats(cfg.statsFile, cfg.chosen)
}

// runBench collects the benchmark snapshot, writes it to -out, and compares
// it against the -check baseline. It reports whether any metric regressed;
// file and collection failures are errors (the user asked for the file, so
// a failure to produce it must not exit zero).
func runBench(cfg config) (regressed bool, err error) {
	start := time.Now()
	snap, err := experiments.CollectBench()
	if err != nil {
		return false, err
	}
	snap.WallSeconds = time.Since(start).Seconds()

	if cfg.outFile != "" {
		f, err := os.Create(cfg.outFile)
		if err != nil {
			return false, err
		}
		if err := snap.WriteJSON(f); err != nil {
			f.Close()
			return false, err
		}
		if err := f.Close(); err != nil {
			return false, err
		}
		fmt.Fprintf(os.Stderr, "bench: snapshot (%d metrics, schema v%d) written to %s\n",
			len(snap.Metrics), snap.SchemaVersion, cfg.outFile)
	}
	if cfg.checkFile != "" {
		baseline, err := experiments.ReadBench(cfg.checkFile)
		if err != nil {
			return false, err
		}
		diffs, bad := experiments.CompareBench(baseline, snap, cfg.tol)
		fmt.Print(experiments.RenderBenchDiff(diffs, cfg.tol))
		if bad {
			fmt.Fprintf(os.Stderr, "mesabench: benchmark regression vs %s (see diff table above)\n", cfg.checkFile)
			return true, nil
		}
	}
	return false, nil
}

// writeStats emits the unified metrics report for a bench run. Every value
// is deterministic and worker-count-invariant except the declared variant
// set (experiments.StatsVariantMetricNames): the eviction-dependent cache
// counters plus the experiments.timing wall-clock summaries. Byte-compares
// across -parallel settings must drop exactly those names. A write failure
// is returned (and exits non-zero) — the user asked for the file.
func writeStats(path string, chosen []experiment) error {
	if path == "" {
		return nil
	}
	reg := obs.NewRegistry()
	reg.Add("bench",
		obs.M("experiments", float64(len(chosen))),
	)
	reg.Add("experiments.pool", experiments.PoolMetrics()...)
	reg.Add("experiments.memo", experiments.SimMemoMetrics()...)
	reg.AddHistogram("experiments.timing", experiments.SimTimingHistograms()...)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stats: metrics report written to %s\n", path)
	return nil
}
