// Command mesabench regenerates every table and figure of the paper's
// evaluation section and prints them to stdout.
//
// Usage:
//
//	mesabench            # run everything
//	mesabench fig11      # run one experiment: fig2, fig8, fig11..fig16, table1, table2
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

type experiment struct {
	name string
	run  func() (string, error)
	data func() (any, error) // structured result for -json
}

var all = []experiment{
	{"table1", renderTable1, dataTable1},
	{"fig2", renderFigure2, dataFigure2},
	{"fig4", renderFigure4, dataFigure4},
	{"fig8", renderFigure8, dataFigure8},
	{"table2", renderTable2, dataTable2},
	{"fig11", renderFigure11, dataFigure11},
	{"fig12", renderFigure12, dataFigure12},
	{"fig13", renderFigure13, dataFigure13},
	{"fig14", renderFigure14, dataFigure14},
	{"fig15", renderFigure15, dataFigure15},
	{"fig16", renderFigure16, dataFigure16},
	{"ablations", renderAblations, dataAblations},
}

func main() {
	asJSON := false
	selected := map[string]bool{}
	for _, arg := range os.Args[1:] {
		if arg == "-json" || arg == "--json" {
			asJSON = true
			continue
		}
		selected[strings.ToLower(arg)] = true
	}
	known := map[string]bool{}
	for _, e := range all {
		known[e.name] = true
	}
	for name := range selected {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "mesabench: unknown experiment %q\n", name)
			fmt.Fprintf(os.Stderr, "available:")
			for _, e := range all {
				fmt.Fprintf(os.Stderr, " %s", e.name)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
	}

	if asJSON {
		results := map[string]any{}
		for _, e := range all {
			if len(selected) > 0 && !selected[e.name] {
				continue
			}
			v, err := e.data()
			if err != nil {
				fmt.Fprintf(os.Stderr, "mesabench: %s: %v\n", e.name, err)
				os.Exit(1)
			}
			results[e.name] = v
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "mesabench:", err)
			os.Exit(1)
		}
		return
	}

	for _, e := range all {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		start := time.Now()
		out, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mesabench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (%.2fs) ====\n%s\n", e.name, time.Since(start).Seconds(), out)
	}
}
