package main

import (
	"errors"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mesa/internal/experiments"
)

// TestMain lets the exit-code tests re-exec this binary as mesabench: with
// MESABENCH_RUN_MAIN set, the process runs main() on MESABENCH_ARGS
// (unit-separator-delimited) instead of the test suite, so os.Exit codes and usage
// output are observable exactly as a user would see them.
func TestMain(m *testing.M) {
	if os.Getenv("MESABENCH_RUN_MAIN") == "1" {
		args := []string{"mesabench"}
		if raw := os.Getenv("MESABENCH_ARGS"); raw != "" {
			args = append(args, strings.Split(raw, "\x1f")...)
		}
		os.Args = args
		main() // exits itself
		return
	}
	os.Exit(m.Run())
}

// runMesabench re-execs the test binary as mesabench and returns its
// combined output and exit code.
func runMesabench(t *testing.T, args ...string) (string, int) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"MESABENCH_RUN_MAIN=1",
		"MESABENCH_ARGS="+strings.Join(args, "\x1f"))
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("re-exec failed: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

// TestBatchFlagValidation pins the -batch contract at the command level: a
// negative lane count is a usage error — exit 2 with the flag named and the
// usage text printed — exactly like an invalid -parallel.
func TestBatchFlagValidation(t *testing.T) {
	out, code := runMesabench(t, "-batch", "-1", "table1")
	if code != 2 {
		t.Fatalf("mesabench -batch -1: exit %d, want 2\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "invalid -batch -1") {
		t.Errorf("error does not name the flag value:\n%s", out)
	}
	if !strings.Contains(out, "usage: mesabench") {
		t.Errorf("usage text missing:\n%s", out)
	}

	// Parity with -parallel, whose contract -batch mirrors.
	out, code = runMesabench(t, "-parallel", "0", "table1")
	if code != 2 || !strings.Contains(out, "invalid -parallel 0") {
		t.Errorf("mesabench -parallel 0: exit %d, output:\n%s", code, out)
	}
}

// TestBatchByteIdentity is the end-to-end determinism gate for the batched
// path: `-parallel 8 -batch 8` must render byte-identical experiment output
// to `-parallel 1 -batch 0` (modulo the wall-time headers), because the
// batched engine is observationally identical and the warmed cache entries
// are the same bytes the scalar runs would compute.
func TestBatchByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment rendering in -short mode")
	}
	var chosen []experiment
	for _, e := range all {
		if e.name == "fig11" || e.name == "fig14" {
			chosen = append(chosen, e)
		}
	}
	if len(chosen) != 2 {
		t.Fatalf("experiment registry missing fig11/fig14")
	}

	experiments.ResetSimMemo()
	scalarCfg := config{parallel: 1, batch: 0, tol: 0.02, chosen: chosen}
	var scalarCode int
	scalar := captureStdout(t, func() { scalarCode = realMain(scalarCfg, "", "") })
	if scalarCode != 0 {
		t.Fatalf("-parallel 1 -batch 0 run: exit %d", scalarCode)
	}

	experiments.ResetSimMemo()
	defer experiments.ResetSimMemo()
	batchCfg := config{parallel: 8, batch: 8, tol: 0.02, chosen: chosen}
	var batchCode int
	batched := captureStdout(t, func() { batchCode = realMain(batchCfg, "", "") })
	if batchCode != 0 {
		t.Fatalf("-parallel 8 -batch 8 run: exit %d", batchCode)
	}

	got := wallTimes.ReplaceAllString(batched, "(T)")
	want := wallTimes.ReplaceAllString(scalar, "(T)")
	if got != want {
		t.Errorf("batched output differs from scalar:\nscalar:\n%s\nbatched:\n%s", want, got)
	}
}

// captureStdout runs f with os.Stdout redirected and returns what it printed.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestCheckExitCodes is the end-to-end gate contract: -check exits zero
// against a faithful baseline and non-zero against a baseline into which a
// synthetic 5% regression was injected, naming the offending metric in the
// diff table.
func TestCheckExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite collection in -short mode")
	}
	snap, err := experiments.CollectBench()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	writeSnap := func(name string, s *experiments.BenchSnapshot) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}

	clean := writeSnap("clean.json", snap)
	if code := realMain(config{checkFile: clean, tol: 0.02}, "", ""); code != 0 {
		t.Errorf("clean baseline: exit %d, want 0", code)
	}

	// Inject the regression into the baseline: demand 5% fewer cycles than
	// the suite actually takes, so the current run reads 5.3% worse.
	bad := *snap
	bad.Metrics = append([]experiments.BenchMetric(nil), snap.Metrics...)
	victim := ""
	for i, m := range bad.Metrics {
		if !m.HigherIsBetter && m.Value > 0 {
			bad.Metrics[i].Value = m.Value * 0.95
			victim = m.Name
			break
		}
	}
	if victim == "" {
		t.Fatal("no lower-is-better metric to perturb")
	}
	badPath := writeSnap("regressed.json", &bad)
	var code int
	out := captureStdout(t, func() {
		code = realMain(config{checkFile: badPath, tol: 0.02}, "", "")
	})
	if code == 0 {
		t.Error("injected 5% regression: exit 0, want non-zero")
	}
	if !strings.Contains(out, victim) || !strings.Contains(out, "REGRESSED") {
		t.Errorf("diff output does not name %s as REGRESSED:\n%s", victim, out)
	}
}

// wallTimes matches the per-experiment wall-time headers — the only
// host-dependent bytes in rendered output.
var wallTimes = regexp.MustCompile(`\(\d+\.\d+s\)`)

// TestNoCacheFlag pins the -nocache escape hatch: the rendered output must be
// byte-identical with and without the simulation-result cache (modulo the
// wall-time headers), and -nocache must actually bypass the cache (its run
// records no hits or misses).
func TestNoCacheFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment rendering in -short mode")
	}
	var exp experiment
	for _, e := range all {
		if e.name == "fig13" {
			exp = e
		}
	}
	base := config{parallel: 2, tol: 0.02, chosen: []experiment{exp}}

	experiments.ResetSimMemo()
	defer experiments.ResetSimMemo()
	cachedCfg := base
	var cachedCode int
	cached := captureStdout(t, func() { cachedCode = realMain(cachedCfg, "", "") })
	if cachedCode != 0 {
		t.Fatalf("cached run: exit %d", cachedCode)
	}
	before := memoCounters()

	noCacheCfg := base
	noCacheCfg.noCache = true
	var code int
	uncached := captureStdout(t, func() { code = realMain(noCacheCfg, "", "") })
	if code != 0 {
		t.Fatalf("-nocache run: exit %d", code)
	}
	if got, want := wallTimes.ReplaceAllString(uncached, "(T)"), wallTimes.ReplaceAllString(cached, "(T)"); got != want {
		t.Errorf("-nocache output differs from cached output:\ncached:\n%s\nnocache:\n%s", want, got)
	}
	if after := memoCounters(); after != before {
		t.Errorf("-nocache run touched the cache: counters %+v -> %+v", before, after)
	}
}

func memoCounters() [2]float64 {
	var c [2]float64
	for _, m := range experiments.SimMemoMetrics() {
		switch m.Name {
		case "sim_cache_hits":
			c[0] = m.Value
		case "sim_cache_misses":
			c[1] = m.Value
		}
	}
	return c
}

// TestOutUnwritablePathExits: asking for an output file that cannot be
// created must not exit zero.
func TestOutUnwritablePathExits(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite collection in -short mode")
	}
	path := filepath.Join(t.TempDir(), "no-such-dir", "BENCH.json")
	if code := realMain(config{outFile: path, tol: 0.02}, "", ""); code == 0 {
		t.Error("unwritable -out path: exit 0, want non-zero")
	}
}
