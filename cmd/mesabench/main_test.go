package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mesa/internal/experiments"
)

// captureStdout runs f with os.Stdout redirected and returns what it printed.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestCheckExitCodes is the end-to-end gate contract: -check exits zero
// against a faithful baseline and non-zero against a baseline into which a
// synthetic 5% regression was injected, naming the offending metric in the
// diff table.
func TestCheckExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite collection in -short mode")
	}
	snap, err := experiments.CollectBench()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	writeSnap := func(name string, s *experiments.BenchSnapshot) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}

	clean := writeSnap("clean.json", snap)
	if code := realMain(config{checkFile: clean, tol: 0.02}, "", ""); code != 0 {
		t.Errorf("clean baseline: exit %d, want 0", code)
	}

	// Inject the regression into the baseline: demand 5% fewer cycles than
	// the suite actually takes, so the current run reads 5.3% worse.
	bad := *snap
	bad.Metrics = append([]experiments.BenchMetric(nil), snap.Metrics...)
	victim := ""
	for i, m := range bad.Metrics {
		if !m.HigherIsBetter && m.Value > 0 {
			bad.Metrics[i].Value = m.Value * 0.95
			victim = m.Name
			break
		}
	}
	if victim == "" {
		t.Fatal("no lower-is-better metric to perturb")
	}
	badPath := writeSnap("regressed.json", &bad)
	var code int
	out := captureStdout(t, func() {
		code = realMain(config{checkFile: badPath, tol: 0.02}, "", "")
	})
	if code == 0 {
		t.Error("injected 5% regression: exit 0, want non-zero")
	}
	if !strings.Contains(out, victim) || !strings.Contains(out, "REGRESSED") {
		t.Errorf("diff output does not name %s as REGRESSED:\n%s", victim, out)
	}
}

// TestOutUnwritablePathExits: asking for an output file that cannot be
// created must not exit zero.
func TestOutUnwritablePathExits(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite collection in -short mode")
	}
	path := filepath.Join(t.TempDir(), "no-such-dir", "BENCH.json")
	if code := realMain(config{outFile: path, tol: 0.02}, "", ""); code == 0 {
		t.Error("unwritable -out path: exit 0, want non-zero")
	}
}
