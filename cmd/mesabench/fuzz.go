package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"mesa/internal/experiments"
	"mesa/internal/genkern"
	"mesa/internal/mapping"
)

// runFuzz implements the `mesabench fuzz` subcommand: a differential fuzzing
// sweep over seeded generated programs, checked across the functional
// interpreter, the CPU timing model, and the MESA controller under every
// registered mapping strategy on both spatial and time-shared backends.
//
//	mesabench fuzz -seeds 500                    # sweep seeds 0..499, all engines
//	mesabench fuzz -mix specials,fma=5           # FP-special-heavy mix
//	mesabench fuzz -mapper greedy                # restrict to one strategy
//	mesabench fuzz -seeds 100 -minimize          # ddmin any failing program
//	mesabench fuzz -parallel 8                   # fan out (output is byte-identical)
//
// Exit status: 0 when every seed agrees on every engine, 1 on any
// divergence, 2 on usage errors. The report is deterministic for a given
// flag set regardless of -parallel.
func runFuzz(args []string) int {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: mesabench fuzz [-seeds N] [-first N] [-mix spec] [-mapper name] [-minimize] [-parallel N]")
		fs.PrintDefaults()
	}
	seeds := fs.Int("seeds", 100, "number of sequential seeds to sweep")
	first := fs.Int64("first", 0, "first seed of the sweep")
	mixSpec := fs.String("mix", "", `instruction mix: preset ("default", "specials") and/or key=value overrides, e.g. "specials,fma=5,branch=0"`)
	mapper := fs.String("mapper", "", "restrict to one placement strategy ("+strings.Join(mapping.Names(), ", ")+"); default all")
	minimize := fs.Bool("minimize", false, "ddmin failing programs to a minimal reproduction")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "worker count for the sweep")
	fs.Parse(args) // exits 2 with usage on bad flags

	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "mesabench fuzz: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	if *seeds < 1 || *parallel < 1 {
		fmt.Fprintln(os.Stderr, "mesabench fuzz: -seeds and -parallel must be positive")
		fs.Usage()
		return 2
	}
	mix, err := genkern.ParseMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mesabench fuzz:", err)
		return 2
	}
	var engines []genkern.EngineConfig
	if *mapper != "" {
		if _, err := mapping.ByName(*mapper); err != nil {
			fmt.Fprintln(os.Stderr, "mesabench fuzz:", err)
			fs.Usage()
			return 2
		}
		for _, ec := range genkern.AllEngineConfigs() {
			if ec.Strategy == *mapper {
				engines = append(engines, ec)
			}
		}
	}
	experiments.SetWorkers(*parallel)

	sum, err := experiments.FuzzSweep(experiments.FuzzOptions{
		Seeds:     *seeds,
		FirstSeed: *first,
		Mix:       mix,
		Engines:   engines,
		Minimize:  *minimize,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mesabench fuzz:", err)
		return 1
	}
	fmt.Print(experiments.RenderFuzz(sum))
	if sum.Mismatches > 0 {
		return 1
	}
	return 0
}
