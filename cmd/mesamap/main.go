// Command mesamap shows MESA's translation pipeline for a kernel: the
// detected region, the Logical DFG with renamed dependencies, the spatial
// mapping (SDFG grid occupancy), the performance-model evaluation with
// critical path, and the configuration cost.
//
// Usage:
//
//	mesamap [-backend M-64|M-128|M-512] [-mapper strategy] <kernel>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/dfg"
	"mesa/internal/kernels"
	"mesa/internal/mapping"
)

func main() {
	// os.Exit skips defers, so the exit code is decided inside realMain and
	// main is the only caller of os.Exit.
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// stickyWriter records the first write error and drops everything after it,
// so a closed pipe or full disk surfaces as a nonzero exit instead of being
// silently discarded.
type stickyWriter struct {
	w   io.Writer
	err error
}

func (s *stickyWriter) Write(p []byte) (int, error) {
	if s.err != nil {
		return len(p), nil
	}
	if _, err := s.w.Write(p); err != nil {
		s.err = err
	}
	return len(p), nil
}

// realMain is the testable entry point: bad usage exits 2, runtime and write
// failures exit 1, success exits 0.
func realMain(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("mesamap", flag.ContinueOnError)
	fs.SetOutput(errw)
	backend := fs.String("backend", "M-128", "accelerator configuration: M-64, M-128, M-512")
	mapper := fs.String("mapper", mapping.Default().Name(),
		"placement strategy ("+strings.Join(mapping.Names(), ", ")+")")
	dot := fs.Bool("dot", false, "emit the mapped DFG in Graphviz DOT format instead of text")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(errw, "usage: mesamap [-backend name] [-mapper strategy] [-dot] <kernel>")
		return 2
	}
	w := &stickyWriter{w: out}
	if err := run(w, fs.Arg(0), *backend, *mapper, *dot); err != nil {
		fmt.Fprintln(errw, "mesamap:", err)
		return 1
	}
	if w.err != nil {
		fmt.Fprintln(errw, "mesamap: write:", w.err)
		return 1
	}
	return 0
}

func run(w io.Writer, name, backendName, mapperName string, emitDot bool) error {
	k, err := kernels.ByName(name)
	if err != nil {
		return err
	}
	strat, err := mapping.ByName(mapperName)
	if err != nil {
		return err
	}
	var be *accel.Config
	switch backendName {
	case "M-64":
		be = accel.M64()
	case "M-128":
		be = accel.M128()
	case "M-512":
		be = accel.M512()
	default:
		return fmt.Errorf("unknown backend %q", backendName)
	}

	prog, loopStart, err := k.Program()
	if err != nil {
		return fmt.Errorf("%s: %w", k.Name, err)
	}
	var end uint32
	for _, in := range prog.Insts {
		if in.IsBackwardBranch() && in.BranchTarget() == loopStart {
			end = in.Addr + 4
		}
	}
	body := prog.Slice(loopStart, end)

	if emitDot {
		ldfg, err := core.BuildLDFG(body, be.EstimateLat)
		if err != nil {
			return err
		}
		sdfg, _, err := strat.Map(ldfg, be, core.DefaultMapperOptions())
		if err != nil {
			return err
		}
		ev := sdfg.Evaluate()
		fmt.Fprint(w, ldfg.Graph.Dot(dfg.DotOptions{
			Name: name,
			Eval: ev,
			Position: func(id dfg.NodeID) string {
				if sdfg.OnBus(id) {
					return "bus"
				}
				return sdfg.Pos[id].String()
			},
			EdgeLatency: sdfg.EdgeLatency,
		}))
		return nil
	}

	mix, reason := core.CheckRegion(body, core.DefaultDetectorConfig(be.MaxInstructions()))
	fmt.Fprintf(w, "region [%#x, %#x): %d instructions\n", loopStart, end, len(body))
	fmt.Fprintf(w, "instruction mix: %d compute, %d memory, %d control (mem frac %.2f)\n",
		mix.Compute, mix.Memory, mix.Control, mix.MemFrac())
	if reason != "" {
		return fmt.Errorf("region rejected: %s", reason)
	}

	ldfg, err := core.BuildLDFG(body, be.EstimateLat)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nLDFG (T1: instructions -> logical DFG via renaming):\n%s", ldfg.Graph.String())
	if ldfg.Forwarded > 0 {
		fmt.Fprintf(w, "store-to-load forwarding eliminated %d loads\n", ldfg.Forwarded)
	}
	fmt.Fprintf(w, "induction updates: %v, loop branch: i%d\n", ldfg.Inductions, ldfg.LoopBranch)

	sdfg, stats, err := strat.Map(ldfg, be, core.DefaultMapperOptions())
	if err != nil {
		return fmt.Errorf("mapping failed (structural hazard): %w", err)
	}
	fmt.Fprintf(w, "\nSDFG (T2: spatial mapping, %s strategy):\n%s", strat.Name(), sdfg.String())
	fmt.Fprintf(w, "mapper: %d PE placements, %d LSU placements, %d bus fallbacks, %d candidates scanned\n",
		stats.PEPlacements, stats.LSUPlacements, stats.BusFallbacks, stats.CandidatesScanned)
	if stats.RefineSteps > 0 {
		fmt.Fprintf(w, "refinement: %d/%d proposals accepted\n", stats.RefineAccepted, stats.RefineSteps)
	}

	ev := sdfg.Evaluate()
	fmt.Fprintf(w, "\nperformance model (Equation 2 over the mapped graph):\n")
	fmt.Fprintf(w, "modeled iteration latency: %.1f cycles\n", ev.Total)
	fmt.Fprint(w, "critical path:")
	for _, id := range ev.CriticalPath() {
		fmt.Fprintf(w, " i%d", id)
	}
	fmt.Fprintln(w)

	cost := core.EstimateConfigCost(ldfg, stats, 1)
	fmt.Fprintf(w, "\nconfiguration (T3): %s = %.2f µs at %.1f GHz\n",
		cost, cost.Micros(be.ClockGHz), be.ClockGHz)
	return nil
}
