// Command mesamap shows MESA's translation pipeline for a kernel: the
// detected region, the Logical DFG with renamed dependencies, the spatial
// mapping (SDFG grid occupancy), the performance-model evaluation with
// critical path, and the configuration cost.
//
// Usage:
//
//	mesamap [-backend M-64|M-128|M-512] [-mapper strategy] <kernel>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/dfg"
	"mesa/internal/kernels"
	"mesa/internal/mapping"
)

func main() {
	backend := flag.String("backend", "M-128", "accelerator configuration: M-64, M-128, M-512")
	mapper := flag.String("mapper", mapping.Default().Name(),
		"placement strategy ("+strings.Join(mapping.Names(), ", ")+")")
	dot := flag.Bool("dot", false, "emit the mapped DFG in Graphviz DOT format instead of text")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mesamap [-backend name] [-mapper strategy] [-dot] <kernel>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *backend, *mapper, *dot); err != nil {
		fmt.Fprintln(os.Stderr, "mesamap:", err)
		os.Exit(1)
	}
}

func run(name, backendName, mapperName string, emitDot bool) error {
	k, err := kernels.ByName(name)
	if err != nil {
		return err
	}
	strat, err := mapping.ByName(mapperName)
	if err != nil {
		return err
	}
	var be *accel.Config
	switch backendName {
	case "M-64":
		be = accel.M64()
	case "M-128":
		be = accel.M128()
	case "M-512":
		be = accel.M512()
	default:
		return fmt.Errorf("unknown backend %q", backendName)
	}

	prog, loopStart, err := k.Program()
	if err != nil {
		return fmt.Errorf("%s: %w", k.Name, err)
	}
	var end uint32
	for _, in := range prog.Insts {
		if in.IsBackwardBranch() && in.BranchTarget() == loopStart {
			end = in.Addr + 4
		}
	}
	body := prog.Slice(loopStart, end)

	if emitDot {
		ldfg, err := core.BuildLDFG(body, be.EstimateLat)
		if err != nil {
			return err
		}
		sdfg, _, err := strat.Map(ldfg, be, core.DefaultMapperOptions())
		if err != nil {
			return err
		}
		ev := sdfg.Evaluate()
		fmt.Print(ldfg.Graph.Dot(dfg.DotOptions{
			Name: name,
			Eval: ev,
			Position: func(id dfg.NodeID) string {
				if sdfg.OnBus(id) {
					return "bus"
				}
				return sdfg.Pos[id].String()
			},
			EdgeLatency: sdfg.EdgeLatency,
		}))
		return nil
	}

	mix, reason := core.CheckRegion(body, core.DefaultDetectorConfig(be.MaxInstructions()))
	fmt.Printf("region [%#x, %#x): %d instructions\n", loopStart, end, len(body))
	fmt.Printf("instruction mix: %d compute, %d memory, %d control (mem frac %.2f)\n",
		mix.Compute, mix.Memory, mix.Control, mix.MemFrac())
	if reason != "" {
		return fmt.Errorf("region rejected: %s", reason)
	}

	ldfg, err := core.BuildLDFG(body, be.EstimateLat)
	if err != nil {
		return err
	}
	fmt.Printf("\nLDFG (T1: instructions -> logical DFG via renaming):\n%s", ldfg.Graph.String())
	if ldfg.Forwarded > 0 {
		fmt.Printf("store-to-load forwarding eliminated %d loads\n", ldfg.Forwarded)
	}
	fmt.Printf("induction updates: %v, loop branch: i%d\n", ldfg.Inductions, ldfg.LoopBranch)

	sdfg, stats, err := strat.Map(ldfg, be, core.DefaultMapperOptions())
	if err != nil {
		return fmt.Errorf("mapping failed (structural hazard): %w", err)
	}
	fmt.Printf("\nSDFG (T2: spatial mapping, %s strategy):\n%s", strat.Name(), sdfg.String())
	fmt.Printf("mapper: %d PE placements, %d LSU placements, %d bus fallbacks, %d candidates scanned\n",
		stats.PEPlacements, stats.LSUPlacements, stats.BusFallbacks, stats.CandidatesScanned)
	if stats.RefineSteps > 0 {
		fmt.Printf("refinement: %d/%d proposals accepted\n", stats.RefineAccepted, stats.RefineSteps)
	}

	ev := sdfg.Evaluate()
	fmt.Printf("\nperformance model (Equation 2 over the mapped graph):\n")
	fmt.Printf("modeled iteration latency: %.1f cycles\n", ev.Total)
	fmt.Print("critical path:")
	for _, id := range ev.CriticalPath() {
		fmt.Printf(" i%d", id)
	}
	fmt.Println()

	cost := core.EstimateConfigCost(ldfg, stats, 1)
	fmt.Printf("\nconfiguration (T3): %s = %.2f µs at %.1f GHz\n",
		cost, cost.Micros(be.ClockGHz), be.ClockGHz)
	return nil
}
