package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// captureStdout runs f with os.Stdout redirected and returns what it printed.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestRunGolden pins the full text output of the translation-pipeline
// report per strategy. Everything mesamap prints is a deterministic function
// of (kernel, backend, strategy), so the bytes must not drift; regenerate
// deliberately with `go test ./cmd/mesamap -run Golden -update`.
func TestRunGolden(t *testing.T) {
	cases := []struct {
		file, kernel, backend, mapper string
	}{
		{"nn_greedy", "nn", "M-128", "greedy"},
		{"nn_anneal", "nn", "M-128", "greedy+anneal"},
		{"nn_congestion", "nn", "M-128", "congestion"},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			out := captureStdout(t, func() {
				if err := run(tc.kernel, tc.backend, tc.mapper, false); err != nil {
					t.Fatal(err)
				}
			})
			golden := filepath.Join("testdata", tc.file+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if out != string(want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, out, want)
			}
			// The same invocation must reproduce the same bytes.
			again := captureStdout(t, func() {
				if err := run(tc.kernel, tc.backend, tc.mapper, false); err != nil {
					t.Fatal(err)
				}
			})
			if again != out {
				t.Error("two identical runs printed different output")
			}
		})
	}
}

// TestRunUnknownMapper pins the -mapper error message: it names the bad
// strategy and lists the registered ones.
func TestRunUnknownMapper(t *testing.T) {
	err := run("nn", "M-128", "bogus", false)
	if err == nil {
		t.Fatal("unknown -mapper: no error")
	}
	msg := err.Error()
	for _, want := range []string{`unknown strategy "bogus"`, "congestion", "greedy", "greedy+anneal"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

// TestRunUnknownBackend keeps the pre-existing backend error intact.
func TestRunUnknownBackend(t *testing.T) {
	err := run("nn", "M-999", "greedy", false)
	if err == nil || !strings.Contains(err.Error(), `unknown backend "M-999"`) {
		t.Errorf("unknown backend error = %v", err)
	}
}

// TestRunDot keeps the DOT path working under every strategy.
func TestRunDot(t *testing.T) {
	for _, mapper := range []string{"greedy", "greedy+anneal", "congestion"} {
		out := captureStdout(t, func() {
			if err := run("nn", "M-128", mapper, true); err != nil {
				t.Fatal(err)
			}
		})
		if !strings.Contains(out, "digraph") {
			t.Errorf("%s: -dot output is not a digraph:\n%s", mapper, out)
		}
	}
}
