package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mesa/internal/mapping"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// TestRunGolden pins the full text output of the translation-pipeline
// report per strategy. Everything mesamap prints is a deterministic function
// of (kernel, backend, strategy), so the bytes must not drift; regenerate
// deliberately with `go test ./cmd/mesamap -run Golden -update`.
func TestRunGolden(t *testing.T) {
	cases := []struct {
		file, kernel, backend, mapper string
	}{
		{"nn_greedy", "nn", "M-128", "greedy"},
		{"nn_anneal", "nn", "M-128", "greedy+anneal"},
		{"nn_congestion", "nn", "M-128", "congestion"},
		{"nn_modulo", "nn", "M-128", "modulo"},
		{"nn_auto", "nn", "M-128", "auto"},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, tc.kernel, tc.backend, tc.mapper, false); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			golden := filepath.Join("testdata", tc.file+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if out != string(want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, out, want)
			}
			// The same invocation must reproduce the same bytes.
			var again bytes.Buffer
			if err := run(&again, tc.kernel, tc.backend, tc.mapper, false); err != nil {
				t.Fatal(err)
			}
			if again.String() != out {
				t.Error("two identical runs printed different output")
			}
		})
	}
}

// TestRunUnknownMapper pins the -mapper error message: it names the bad
// strategy and lists every registered one — the list comes from the
// registry, so new strategies appear without touching this test.
func TestRunUnknownMapper(t *testing.T) {
	err := run(&bytes.Buffer{}, "nn", "M-128", "bogus", false)
	if err == nil {
		t.Fatal("unknown -mapper: no error")
	}
	msg := err.Error()
	want := append([]string{`unknown strategy "bogus"`}, mapping.Names()...)
	for _, w := range want {
		if !strings.Contains(msg, w) {
			t.Errorf("error %q missing %q", msg, w)
		}
	}
}

// TestRunUnknownBackend keeps the pre-existing backend error intact.
func TestRunUnknownBackend(t *testing.T) {
	err := run(&bytes.Buffer{}, "nn", "M-999", "greedy", false)
	if err == nil || !strings.Contains(err.Error(), `unknown backend "M-999"`) {
		t.Errorf("unknown backend error = %v", err)
	}
}

// TestRunDot keeps the DOT path working under every registered strategy.
func TestRunDot(t *testing.T) {
	for _, mapper := range mapping.Names() {
		var buf bytes.Buffer
		if err := run(&buf, "nn", "M-128", mapper, true); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "digraph") {
			t.Errorf("%s: -dot output is not a digraph:\n%s", mapper, buf.String())
		}
	}
}

// failWriter fails every write after the first n bytes, modeling a closed
// pipe or full disk.
type failWriter struct {
	n int
}

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n -= len(p)
	return len(p), nil
}

// TestRealMainExitCodes: usage mistakes exit 2, runtime failures exit 1,
// write failures exit 1 — all through realMain's normal return path so
// defers always run (the os.Exit-mid-function bug this replaces).
func TestRealMainExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
		frag string
	}{
		{"success", []string{"nn"}, 0, ""},
		{"bad flag", []string{"-no-such-flag", "nn"}, 2, "flag provided but not defined"},
		{"missing kernel", []string{}, 2, "usage:"},
		{"two kernels", []string{"nn", "kmeans"}, 2, "usage:"},
		{"unknown kernel", []string{"no-such-kernel"}, 1, "no-such-kernel"},
		{"unknown mapper", []string{"-mapper", "bogus", "nn"}, 1, "bogus"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw bytes.Buffer
			if code := realMain(tc.args, &out, &errw); code != tc.code {
				t.Errorf("exit code = %d, want %d (stderr: %s)", code, tc.code, errw.String())
			}
			if tc.frag != "" && !strings.Contains(errw.String(), tc.frag) {
				t.Errorf("stderr %q missing %q", errw.String(), tc.frag)
			}
		})
	}
}

// TestRealMainWriteFailure: a failing stdout (closed pipe, full disk) must
// surface as exit 1 with a diagnostic, not a silent 0.
func TestRealMainWriteFailure(t *testing.T) {
	var errw bytes.Buffer
	code := realMain([]string{"nn"}, &failWriter{n: 16}, &errw)
	if code != 1 {
		t.Errorf("exit code with failing writer = %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "write") {
		t.Errorf("stderr %q does not report the write failure", errw.String())
	}
}
