// Command mesaasm assembles and disassembles RV32IMF code using the
// reproduction's ISA substrate.
//
// Usage:
//
//	mesaasm [-base addr] <file.s>         # assemble, print addr/word/asm
//	echo "add x5, x6, x7" | mesaasm -     # assemble stdin
//	mesaasm -d 0x007302b3 0x00a28293      # disassemble machine words
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"mesa/internal/asm"
	"mesa/internal/isa"
)

func main() {
	base := flag.Uint64("base", 0x1000, "base address for assembly")
	disasm := flag.Bool("d", false, "disassemble hex words given as arguments")
	flag.Parse()

	if *disasm {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "mesaasm: -d requires hex words")
			os.Exit(2)
		}
		for _, arg := range flag.Args() {
			word, err := strconv.ParseUint(arg, 0, 32)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mesaasm: bad word %q: %v\n", arg, err)
				os.Exit(1)
			}
			in, err := isa.Decode(uint32(word))
			if err != nil {
				fmt.Printf("%08x  <unknown: %v>\n", word, err)
				continue
			}
			fmt.Printf("%08x  %s\n", word, in)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mesaasm [-base addr] <file.s | ->   or   mesaasm -d <words...>")
		os.Exit(2)
	}
	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mesaasm:", err)
		os.Exit(1)
	}
	prog, err := asm.Assemble(uint32(*base), string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mesaasm:", err)
		os.Exit(1)
	}
	for _, in := range prog.Insts {
		word, err := isa.Encode(in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mesaasm: cannot encode %v: %v\n", in, err)
			os.Exit(1)
		}
		fmt.Printf("%08x:  %08x  %s\n", in.Addr, word, in)
	}
	if len(prog.Symbols) > 0 {
		fmt.Println("\nsymbols:")
		for name, addr := range prog.Symbols {
			fmt.Printf("  %-16s %08x\n", name, addr)
		}
	}
}
