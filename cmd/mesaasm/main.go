// Command mesaasm assembles and disassembles RV32IMF code using the
// reproduction's ISA substrate.
//
// Usage:
//
//	mesaasm [-base addr] <file.s>         # assemble, print addr/word/asm
//	echo "add x5, x6, x7" | mesaasm -     # assemble stdin
//	mesaasm -d 0x007302b3 0x00a28293      # disassemble machine words
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"mesa/internal/asm"
	"mesa/internal/isa"
)

func main() {
	// os.Exit skips defers, so the exit code is decided inside realMain and
	// main is the only caller of os.Exit.
	os.Exit(realMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// stickyWriter records the first write error and drops everything after it,
// so a closed pipe or full disk surfaces as a nonzero exit instead of being
// silently discarded.
type stickyWriter struct {
	w   io.Writer
	err error
}

func (s *stickyWriter) Write(p []byte) (int, error) {
	if s.err != nil {
		return len(p), nil
	}
	if _, err := s.w.Write(p); err != nil {
		s.err = err
	}
	return len(p), nil
}

// realMain is the testable entry point: bad usage exits 2, runtime and write
// failures exit 1, success exits 0.
func realMain(args []string, stdin io.Reader, out, errw io.Writer) int {
	fs := flag.NewFlagSet("mesaasm", flag.ContinueOnError)
	fs.SetOutput(errw)
	base := fs.Uint64("base", 0x1000, "base address for assembly")
	disasm := fs.Bool("d", false, "disassemble hex words given as arguments")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	w := &stickyWriter{w: out}
	code := runAsm(fs, *base, *disasm, stdin, w, errw)
	if code == 0 && w.err != nil {
		fmt.Fprintln(errw, "mesaasm: write:", w.err)
		return 1
	}
	return code
}

func runAsm(fs *flag.FlagSet, base uint64, disasm bool, stdin io.Reader, w, errw io.Writer) int {
	if disasm {
		if fs.NArg() == 0 {
			fmt.Fprintln(errw, "mesaasm: -d requires hex words")
			return 2
		}
		for _, arg := range fs.Args() {
			word, err := strconv.ParseUint(arg, 0, 32)
			if err != nil {
				fmt.Fprintf(errw, "mesaasm: bad word %q: %v\n", arg, err)
				return 1
			}
			in, err := isa.Decode(uint32(word))
			if err != nil {
				fmt.Fprintf(w, "%08x  <unknown: %v>\n", word, err)
				continue
			}
			fmt.Fprintf(w, "%08x  %s\n", word, in)
		}
		return 0
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(errw, "usage: mesaasm [-base addr] <file.s | ->   or   mesaasm -d <words...>")
		return 2
	}
	var src []byte
	var err error
	if fs.Arg(0) == "-" {
		src, err = io.ReadAll(stdin)
	} else {
		src, err = os.ReadFile(fs.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(errw, "mesaasm:", err)
		return 1
	}
	prog, err := asm.Assemble(uint32(base), string(src))
	if err != nil {
		fmt.Fprintln(errw, "mesaasm:", err)
		return 1
	}
	for _, in := range prog.Insts {
		word, err := isa.Encode(in)
		if err != nil {
			fmt.Fprintf(errw, "mesaasm: cannot encode %v: %v\n", in, err)
			return 1
		}
		fmt.Fprintf(w, "%08x:  %08x  %s\n", in.Addr, word, in)
	}
	if len(prog.Symbols) > 0 {
		fmt.Fprintln(w, "\nsymbols:")
		for name, addr := range prog.Symbols {
			fmt.Fprintf(w, "  %-16s %08x\n", name, addr)
		}
	}
	return 0
}
