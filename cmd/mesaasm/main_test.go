package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// failWriter fails every write after the first n bytes, modeling a closed
// pipe or full disk.
type failWriter struct {
	n int
}

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n -= len(p)
	return len(p), nil
}

// TestRealMainExitCodes: usage mistakes exit 2, runtime failures exit 1 —
// all through realMain's normal return path so defers always run (the
// os.Exit-mid-function bug this replaces).
func TestRealMainExitCodes(t *testing.T) {
	srcFile := filepath.Join(t.TempDir(), "loop.s")
	if err := os.WriteFile(srcFile, []byte("add x5, x6, x7\naddi x5, x5, -1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		args  []string
		stdin string
		code  int
		frag  string // on stderr
		want  string // on stdout
	}{
		{"assemble file", []string{srcFile}, "", 0, "", "add"},
		{"assemble stdin", []string{"-"}, "mul x5, x6, x7\n", 0, "", "mul"},
		{"disassemble", []string{"-d", "0x007302b3"}, "", 0, "", "add"},
		{"disassemble unknown word", []string{"-d", "0xffffffff"}, "", 0, "", "<unknown"},
		{"bad flag", []string{"-no-such-flag"}, "", 2, "flag provided but not defined", ""},
		{"no input", []string{}, "", 2, "usage:", ""},
		{"two inputs", []string{srcFile, srcFile}, "", 2, "usage:", ""},
		{"-d without words", []string{"-d"}, "", 2, "requires hex words", ""},
		{"-d bad word", []string{"-d", "zzz"}, "", 1, "bad word", ""},
		{"missing file", []string{filepath.Join(t.TempDir(), "nope.s")}, "", 1, "no such file", ""},
		{"bad assembly", []string{"-"}, "frobnicate x1, x2\n", 1, "frobnicate", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw bytes.Buffer
			code := realMain(tc.args, strings.NewReader(tc.stdin), &out, &errw)
			if code != tc.code {
				t.Errorf("exit code = %d, want %d (stderr: %s)", code, tc.code, errw.String())
			}
			if tc.frag != "" && !strings.Contains(errw.String(), tc.frag) {
				t.Errorf("stderr %q missing %q", errw.String(), tc.frag)
			}
			if tc.want != "" && !strings.Contains(out.String(), tc.want) {
				t.Errorf("stdout %q missing %q", out.String(), tc.want)
			}
		})
	}
}

// TestRealMainWriteFailure: a failing stdout must surface as exit 1 with a
// diagnostic, not a silent 0.
func TestRealMainWriteFailure(t *testing.T) {
	var errw bytes.Buffer
	code := realMain([]string{"-d", "0x007302b3", "0x00a28293"},
		strings.NewReader(""), &failWriter{n: 4}, &errw)
	if code != 1 {
		t.Errorf("exit code with failing writer = %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "write") {
		t.Errorf("stderr %q does not report the write failure", errw.String())
	}
}
