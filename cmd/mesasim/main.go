// Command mesasim runs one kernel end-to-end three ways — functional
// reference, CPU timing model, and MESA-accelerated — and prints a report
// comparing them.
//
// Usage:
//
//	mesasim [-backend M-64|M-128|M-512] [-mapper strategy] [-cores N] [-no-tiling] [-no-pipeline] <kernel>
//	mesasim -explain <kernel>
//	mesasim -trace trace.json -stats stats.json <kernel>
//	mesasim -cpuprofile cpu.pprof -memprofile mem.pprof <kernel>
//	mesasim -list
//
// -explain prints the bottleneck attribution report for every accelerated
// region: all four candidate initiation-interval bounds (dependence /
// memports / noc / timeshare), the recurrence nodes behind the dependence
// bound, a per-PE firing-utilization heatmap, NoC row occupancy, and memory
// port contention shares. -trace writes the MESA run as Chrome trace-event
// JSON (open in https://ui.perfetto.dev): CPU retirements, controller FSM
// phases, and per-node accelerator activity on one timeline. -stats writes
// every counter surface of the run as one JSON report. -cpuprofile and
// -memprofile write Go pprof profiles of the simulator itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"mesa/internal/accel"
	"mesa/internal/core"
	"mesa/internal/cpu"
	"mesa/internal/energy"
	"mesa/internal/kernels"
	"mesa/internal/mapping"
	"mesa/internal/mem"
	"mesa/internal/obs"
	"mesa/internal/sim"
)

// options collects the run configuration from the command line.
type options struct {
	backend    string
	mapper     string
	cores      int
	noTiling   bool
	noPipeline bool
	timeShare  int
	explain    bool
	traceFile  string
	statsFile  string
}

func main() {
	var o options
	flag.StringVar(&o.backend, "backend", "M-128", "accelerator configuration: M-64, M-128, M-512")
	flag.StringVar(&o.mapper, "mapper", mapping.Default().Name(),
		"placement strategy ("+strings.Join(mapping.Names(), ", ")+")")
	flag.IntVar(&o.cores, "cores", 16, "CPU baseline core count")
	flag.BoolVar(&o.noTiling, "no-tiling", false, "disable spatial tiling")
	flag.BoolVar(&o.noPipeline, "no-pipeline", false, "disable iteration pipelining")
	flag.IntVar(&o.timeShare, "timeshare", 1, "time-multiplexing extension: max instructions per PE")
	flag.BoolVar(&o.explain, "explain", false, "print the bottleneck attribution report per accelerated region")
	flag.StringVar(&o.traceFile, "trace", "", "write the MESA run as Chrome trace-event JSON to this file")
	flag.StringVar(&o.statsFile, "stats", "", "write the unified metrics report as JSON to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the simulator to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile of the simulator to this file")
	list := flag.Bool("list", false, "list available kernels")
	flag.Parse()

	if *list {
		for _, k := range kernels.All() {
			par := "serial"
			if k.Parallel {
				par = "parallel"
			}
			fmt.Printf("%-14s %-8s N=%-6d %s\n", k.Name, par, k.N, k.Description)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mesasim [flags] <kernel>   (or -list)")
		os.Exit(2)
	}
	// Profile teardown must run even on failure, and os.Exit skips defers,
	// so the exit code is decided inside realMain.
	os.Exit(realMain(flag.Arg(0), o, *cpuProfile, *memProfile))
}

func realMain(kernel string, o options, cpuProfile, memProfile string) int {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mesasim:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "mesasim:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mesasim:", err)
			}
		}()
	}
	if err := run(kernel, o); err != nil {
		fmt.Fprintln(os.Stderr, "mesasim:", err)
		return 1
	}
	if memProfile != "" {
		if err := writeHeapProfile(memProfile); err != nil {
			fmt.Fprintln(os.Stderr, "mesasim:", err)
			return 1
		}
	}
	return 0
}

// writeHeapProfile snapshots the heap after a GC so the profile reflects
// live allocations rather than garbage.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(name string, o options) error {
	k, err := kernels.ByName(name)
	if err != nil {
		return err
	}
	// Resolve the strategy before any simulation so a typo fails fast.
	strat, err := mapping.ByName(o.mapper)
	if err != nil {
		return err
	}
	var be *accel.Config
	switch o.backend {
	case "M-64":
		be = accel.M64()
	case "M-128":
		be = accel.M128()
	case "M-512":
		be = accel.M512()
	default:
		return fmt.Errorf("unknown backend %q", o.backend)
	}

	prog, loopStart, err := k.Program()
	if err != nil {
		return fmt.Errorf("%s failed to assemble: %w", k.Name, err)
	}
	fmt.Printf("kernel %s: %d instructions, hot loop at %#x, %d iterations, parallel=%v\n",
		k.Name, len(prog.Insts), loopStart, k.N, k.Parallel)

	// 1. Functional reference.
	refMem := k.NewMemory(experimentsSeed)
	refMachine := sim.New(prog, refMem)
	if _, err := refMachine.Run(maxSteps); err != nil {
		return fmt.Errorf("functional run: %w", err)
	}
	if err := k.Verify(refMem); err != nil {
		return fmt.Errorf("functional verification: %w", err)
	}
	fmt.Printf("functional: %d instructions retired, output verified\n", refMachine.Stats.Retired)

	// Observability: nil handles when the flags are unset (no overhead).
	var rec *obs.Recorder
	if o.traceFile != "" {
		rec = obs.NewRecorder()
		rec.NameProcess(obs.PIDCPUTiming, "cpu timing baseline")
	}
	var reg *obs.Registry
	if o.statsFile != "" {
		reg = obs.NewRegistry()
	}

	// 2. CPU timing baseline.
	mc := cpu.DefaultMulticore()
	mc.Cores = o.cores
	baseHier := mem.MustHierarchy(mem.DefaultHierarchy())
	single, err := cpu.TimeTraced(mc.Core, prog, k.NewMemory(experimentsSeed), baseHier, maxSteps, rec)
	if err != nil {
		return err
	}
	if reg.Enabled() {
		reg.Add("cpu.baseline", single.Metrics()...)
		reg.Add("mem.baseline", baseHier.Metrics()...)
	}
	fmt.Printf("CPU 1-core: %.0f cycles (IPC %.2f, AMAT %.1f)\n", single.Cycles, single.IPC, single.AMAT)
	baseline := single.Cycles
	if k.Parallel && o.cores > 1 {
		par, err := cpu.TimeParallel(mc, func(chunk, n int) (*cpu.Result, error) {
			p, _, err := k.ChunkProgram(chunk, n)
			if err != nil {
				return nil, fmt.Errorf("%s chunk %d/%d failed to assemble: %w", k.Name, chunk, n, err)
			}
			return cpu.Time(mc.Core, p, k.NewMemory(experimentsSeed), mem.MustHierarchy(mem.DefaultHierarchy()), maxSteps)
		})
		if err != nil {
			return err
		}
		fmt.Printf("CPU %d-core: %.0f cycles\n", o.cores, par.Cycles)
		baseline = par.Cycles
	}

	// 3. MESA transparent offload.
	opts := core.DefaultOptions(be)
	opts.Mapper = strat
	opts.EnableTiling = !o.noTiling
	opts.EnablePipelining = !o.noPipeline
	opts.Recorder = rec
	if o.timeShare > 1 {
		opts.MapperOpts.TimeShare = o.timeShare
		opts.Detector.MaxInsts = 0 // rederive capacity with the extension
	}
	if k.Parallel {
		opts.Detector.ParallelLoops = map[uint32]bool{loopStart: true}
	}
	ctl := core.NewController(opts)
	accelMem := k.NewMemory(experimentsSeed)
	hier := mem.MustHierarchy(mem.DefaultHierarchy())
	report, accelMachine, err := ctl.Run(prog, accelMem, hier, maxSteps)
	if err != nil {
		return err
	}
	if !refMem.Equal(accelMem) {
		return fmt.Errorf("accelerated run diverged from reference memory")
	}
	if err := k.Verify(accelMem); err != nil {
		return fmt.Errorf("accelerated verification: %w", err)
	}

	if rec.Enabled() {
		f, err := os.Create(o.traceFile)
		if err != nil {
			return err
		}
		if err := rec.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d events written to %s (load in https://ui.perfetto.dev)\n", rec.Len(), o.traceFile)
	}
	if reg.Enabled() {
		reg.Add("kernel",
			obs.M("n", float64(k.N)),
			obs.M("instructions", float64(len(prog.Insts))),
		)
		reg.Add("cpu.core", accelMachine.Stats.Metrics()...)
		reg.Add("mem", hier.Metrics()...)
		report.AddMetrics(reg)
		f, err := os.Create(o.statsFile)
		if err != nil {
			return err
		}
		if err := reg.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("stats: metrics report written to %s\n", o.statsFile)
	}

	if len(report.Regions) == 0 {
		fmt.Printf("MESA %s: loop did not qualify (rejections: %v); ran on CPU, output verified\n",
			be.Name, report.Rejections)
		return nil
	}
	rr := report.Regions[0]
	cpuPerIter := single.Cycles / float64(k.N)
	prof := (float64(k.N) - float64(rr.Iterations)) * cpuPerIter
	total := rr.TotalCycles() + prof
	fmt.Printf("MESA %s: region of %d insts mapped (tiles=%d, bus fallbacks=%d)\n",
		be.Name, rr.Region.Len(), rr.Tiles, rr.Stats.BusFallbacks)
	fmt.Printf("  config %d cycles (%s), reconfigurations %d\n",
		rr.ConfigCost.Total(), rr.ConfigCost, rr.Reconfigs)
	fmt.Printf("  %d iterations accelerated: avg %.1f cycles/iter, II %.3f (%s-bound)\n",
		rr.Iterations, rr.FinalAvgIter, rr.FinalII, rr.Bound)
	fmt.Printf("  total %.0f cycles (accel %.0f + overhead %.0f + CPU profiling %.0f)\n",
		total, rr.AccelCycles, rr.OverheadCycles, prof)
	fmt.Printf("  speedup vs %d-core CPU: %.2fx\n", o.cores, baseline/total)
	b := energy.AccelEnergy(be, rr.Activity)
	fmt.Printf("  accelerator energy: %.0f nJ (compute %.0f, memory %.0f, NoC %.0f, control %.0f, leakage %.0f)\n",
		b.TotalNJ(), b.ComputeNJ, b.MemoryNJ, b.NoCNJ, b.ControlNJ, b.LeakageNJ)
	fmt.Println("  memory state identical to functional reference ✓")
	if o.explain {
		for i, region := range report.Regions {
			if region.Attrib == nil {
				continue
			}
			fmt.Printf("\nregion %d @%#x:\n%s", i, region.Region.Start, region.Attrib.Render())
		}
	}
	return nil
}

const (
	experimentsSeed = 42
	maxSteps        = 50_000_000
)
