// Command mesad is the MESA simulation service: a long-running HTTP/JSON
// server that accepts a named kernel (or raw RV32IMF program words), an
// accelerator backend, and a placement strategy, and returns the
// accelerated-loop result plus the bottleneck-attribution report.
//
// Usage:
//
//	mesad                           # serve on :8177
//	mesad -addr 127.0.0.1:9000      # explicit listen address
//	mesad -parallel 8               # admit at most 8 concurrent simulations
//	mesad -cache-size 1024          # bound the in-memory result LRU
//	mesad -cache-dir /var/mesa      # persist warm results across restarts
//	mesad -mapper congestion        # default placement strategy
//	mesad -smoke                    # self-test: serve, load-generate, scrape /metrics, exit
//
// Endpoints:
//
//	POST /v1/simulate   {"kernel":"nn","backend":"M-128","mapper":"greedy"}
//	                    or {"program":{"base":4096,"words":[...]}}
//	GET  /v1/kernels    list the built-in kernels
//	GET  /metrics       every counter surface (server, pool, sim cache) as JSON
//	GET  /healthz       liveness
//
// SIGINT/SIGTERM drain gracefully: in-flight simulations finish, new
// requests are refused with 503.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mesa/internal/experiments"
	"mesa/internal/mapping"
	"mesa/internal/server"
)

// options collects the parsed command line.
type options struct {
	addr      string
	parallel  int
	cacheSize int
	cacheDir  string
	mapper    string
	smoke     bool
}

func main() {
	// os.Exit skips defers and the listener/teardown must run on every
	// path, so the exit code is decided inside realMain.
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("mesad", flag.ContinueOnError)
	fs.SetOutput(errw)
	var o options
	fs.StringVar(&o.addr, "addr", ":8177", "listen address")
	fs.IntVar(&o.parallel, "parallel", 0, "max concurrent simulations (0 = GOMAXPROCS); also sizes the sweep worker pool")
	fs.IntVar(&o.cacheSize, "cache-size", experiments.DefaultSimMemoCapacity,
		"bound on the in-memory simulation-result LRU (0 = unbounded)")
	fs.StringVar(&o.cacheDir, "cache-dir", "",
		"content-addressed on-disk result store; warm results survive restarts (empty = memory only)")
	fs.StringVar(&o.mapper, "mapper", mapping.Default().Name(),
		"default placement strategy ("+strings.Join(mapping.Names(), ", ")+")")
	fs.BoolVar(&o.smoke, "smoke", false,
		"self-test: serve on a loopback port, run the load generator, scrape /metrics, exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(errw, "mesad: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	if _, err := mapping.ByName(o.mapper); err != nil {
		fmt.Fprintln(errw, "mesad:", err)
		return 2
	}
	if o.parallel < 0 {
		fmt.Fprintf(errw, "mesad: invalid -parallel %d\n", o.parallel)
		return 2
	}
	experiments.SetWorkers(o.parallel)
	experiments.SetSimMemoCapacity(o.cacheSize)

	var store *experiments.DiskStore
	if o.cacheDir != "" {
		if err := experiments.SetSimMemoDir(o.cacheDir); err != nil {
			fmt.Fprintln(errw, "mesad:", err)
			return 1
		}
		var err error
		store, err = experiments.OpenDiskStore(o.cacheDir)
		if err != nil {
			fmt.Fprintln(errw, "mesad:", err)
			return 1
		}
	}

	srv := server.New(server.Config{
		DefaultMapper: o.mapper,
		Admission:     o.parallel,
		Store:         store,
	})

	addr := o.addr
	if o.smoke {
		addr = "127.0.0.1:0" // never fight over a port in CI
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(errw, "mesad:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	if o.smoke {
		return runSmoke(srv, httpSrv, ln, out, errw)
	}

	// Serve until a signal, then drain: in-flight requests finish, new ones
	// are refused with 503.
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(out, "mesad: serving on %s (mapper %s, cache %d entries", ln.Addr(), o.mapper, o.cacheSize)
	if o.cacheDir != "" {
		fmt.Fprintf(out, ", disk store %s", o.cacheDir)
	}
	fmt.Fprintln(out, ")")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(errw, "mesad:", err)
			return 1
		}
	case s := <-sig:
		fmt.Fprintf(out, "mesad: %v, draining\n", s)
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(errw, "mesad:", err)
			return 1
		}
	}
	return 0
}

// runSmoke is the -smoke self-test: serve on a loopback port, run the load
// generator twice (cold then warm — warm must be all cache hits), scrape
// /metrics, shut down gracefully. A small kernel subset keeps the smoke
// brief; the full 17×3 matrix runs in the server package's tests.
func runSmoke(srv *server.Server, httpSrv *http.Server, ln net.Listener, out, errw io.Writer) int {
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "mesad: smoke serving on %s\n", base)

	client := &http.Client{Timeout: 120 * time.Second}
	opts := server.LoadOptions{
		Kernels: []string{"nn", "kmeans", "hotspot"},
		Clients: 4,
	}
	for _, label := range []string{"cold", "warm"} {
		stats, err := server.LoadGen(client, base, srv, opts)
		if err != nil {
			fmt.Fprintf(errw, "mesad: smoke %s pass: %v\n", label, err)
			return 1
		}
		fmt.Fprintf(out, "mesad: smoke %s pass: %d requests, %d mismatches\n",
			label, stats.Requests, stats.Mismatches)
	}

	metrics, err := client.Get(base + "/metrics")
	if err != nil {
		fmt.Fprintln(errw, "mesad: smoke /metrics:", err)
		return 1
	}
	body, err := io.ReadAll(metrics.Body)
	metrics.Body.Close()
	if err != nil || metrics.StatusCode != http.StatusOK {
		fmt.Fprintf(errw, "mesad: smoke /metrics: status %d err %v\n", metrics.StatusCode, err)
		return 1
	}
	for _, want := range []string{"sim_cache_hits", "admitted", "experiments.pool"} {
		if !strings.Contains(string(body), want) {
			fmt.Fprintf(errw, "mesad: smoke /metrics missing %q:\n%s\n", want, body)
			return 1
		}
	}
	fmt.Fprintf(out, "mesad: smoke /metrics ok (%d bytes)\n", len(body))

	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(errw, "mesad:", err)
		return 1
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(errw, "mesad:", err)
		return 1
	}
	fmt.Fprintln(out, "mesad: smoke ok")
	return 0
}
