// Command mesad is the MESA simulation service: a long-running HTTP/JSON
// server that accepts a named kernel (or raw RV32IMF program words), an
// accelerator backend, and a placement strategy, and returns the
// accelerated-loop result plus the bottleneck-attribution report.
//
// Usage:
//
//	mesad                           # serve on :8177
//	mesad -addr 127.0.0.1:9000      # explicit listen address
//	mesad -parallel 8               # admit at most 8 concurrent simulations
//	mesad -cache-size 1024          # bound the in-memory result LRU
//	mesad -cache-dir /var/mesa      # persist warm results across restarts
//	mesad -mapper congestion        # default placement strategy
//	mesad -log-level debug          # structured JSON request logs (off|debug|info|warn|error)
//	mesad -debug-addr 127.0.0.1:0   # serve net/http/pprof on a side listener
//	mesad -flight 128               # retain the 128 slowest request traces
//	mesad -smoke                    # self-test: serve, load-generate, scrape /metrics, exit
//
// Endpoints:
//
//	POST /v1/simulate   {"kernel":"nn","backend":"M-128","mapper":"greedy"}
//	                    or {"program":{"base":4096,"words":[...]}}
//	POST /v1/simulate/batch  {"requests":[...]} — up to 64 requests answered
//	                    in one round trip; cold kernels run on the batched
//	                    lockstep engine; each item body matches /v1/simulate

//	GET  /v1/kernels    list the built-in kernels
//	GET  /metrics       every counter surface (server, latency histograms,
//	                    pool, sim cache) as JSON; Accept: text/plain selects
//	                    the Prometheus text exposition
//	GET  /healthz       liveness JSON: uptime, drain state, in-flight, queue
//	GET  /debug/requests            the N slowest request span trees
//	GET  /debug/requests/{id}/trace one request as Chrome trace JSON
//
// Every response carries X-Request-ID (client-propagated or generated), and
// each request emits one structured log line with per-stage timings.
//
// SIGINT/SIGTERM drain gracefully: in-flight simulations finish, new
// requests are refused with 503.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mesa/internal/experiments"
	"mesa/internal/mapping"
	"mesa/internal/obs"
	"mesa/internal/server"
)

// options collects the parsed command line.
type options struct {
	addr       string
	parallel   int
	cacheSize  int
	cacheDir   string
	mapper     string
	logLevel   string
	debugAddr  string
	flight     int
	smoke      bool
	smokeTrace string
}

// newLogger builds the request logger: JSON lines to w at the given level,
// or nil (logging disabled) for "off".
func newLogger(w io.Writer, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "off":
		return nil, nil
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("invalid -log-level %q (want off, debug, info, warn, or error)", level)
	}
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: lv})), nil
}

func main() {
	// os.Exit skips defers and the listener/teardown must run on every
	// path, so the exit code is decided inside realMain.
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("mesad", flag.ContinueOnError)
	fs.SetOutput(errw)
	var o options
	fs.StringVar(&o.addr, "addr", ":8177", "listen address")
	fs.IntVar(&o.parallel, "parallel", 0, "max concurrent simulations (0 = GOMAXPROCS); also sizes the sweep worker pool")
	fs.IntVar(&o.cacheSize, "cache-size", experiments.DefaultSimMemoCapacity,
		"bound on the in-memory simulation-result LRU (0 = unbounded)")
	fs.StringVar(&o.cacheDir, "cache-dir", "",
		"content-addressed on-disk result store; warm results survive restarts (empty = memory only)")
	fs.StringVar(&o.mapper, "mapper", mapping.Default().Name(),
		"default placement strategy ("+strings.Join(mapping.Names(), ", ")+")")
	fs.StringVar(&o.logLevel, "log-level", "info",
		"structured request-log level: off, debug, info, warn, or error")
	fs.StringVar(&o.debugAddr, "debug-addr", "",
		"serve net/http/pprof on this side address (empty = disabled)")
	fs.IntVar(&o.flight, "flight", 64,
		"retain the N slowest request traces at /debug/requests")
	fs.BoolVar(&o.smoke, "smoke", false,
		"self-test: serve on a loopback port, run the load generator, scrape /metrics, exit")
	fs.StringVar(&o.smokeTrace, "smoke-trace", "",
		"with -smoke: write one flight-recorder trace to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(errw, "mesad: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	if _, err := mapping.ByName(o.mapper); err != nil {
		fmt.Fprintln(errw, "mesad:", err)
		return 2
	}
	if o.parallel < 0 {
		fmt.Fprintf(errw, "mesad: invalid -parallel %d\n", o.parallel)
		return 2
	}
	logger, err := newLogger(errw, o.logLevel)
	if err != nil {
		fmt.Fprintln(errw, "mesad:", err)
		return 2
	}
	experiments.SetWorkers(o.parallel)
	experiments.SetSimMemoCapacity(o.cacheSize)

	var store *experiments.DiskStore
	if o.cacheDir != "" {
		if err := experiments.SetSimMemoDir(o.cacheDir); err != nil {
			fmt.Fprintln(errw, "mesad:", err)
			return 1
		}
		var err error
		store, err = experiments.OpenDiskStore(o.cacheDir)
		if err != nil {
			fmt.Fprintln(errw, "mesad:", err)
			return 1
		}
	}

	srv := server.New(server.Config{
		DefaultMapper: o.mapper,
		Admission:     o.parallel,
		Store:         store,
		Logger:        logger,
		FlightSize:    o.flight,
	})

	// Optional pprof side listener: net/http/pprof registers on the default
	// mux, which the API listener never serves, so profiling stays off the
	// service port.
	if o.debugAddr != "" {
		dln, err := net.Listen("tcp", o.debugAddr)
		if err != nil {
			fmt.Fprintln(errw, "mesad:", err)
			return 1
		}
		defer dln.Close()
		fmt.Fprintf(out, "mesad: pprof on http://%s/debug/pprof/\n", dln.Addr())
		go http.Serve(dln, http.DefaultServeMux)
	}

	addr := o.addr
	if o.smoke {
		addr = "127.0.0.1:0" // never fight over a port in CI
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(errw, "mesad:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	if o.smoke {
		return runSmoke(srv, httpSrv, ln, o.smokeTrace, out, errw)
	}

	// Serve until a signal, then drain: in-flight requests finish, new ones
	// are refused with 503.
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(out, "mesad: serving on %s (mapper %s, cache %d entries", ln.Addr(), o.mapper, o.cacheSize)
	if o.cacheDir != "" {
		fmt.Fprintf(out, ", disk store %s", o.cacheDir)
	}
	fmt.Fprintln(out, ")")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(errw, "mesad:", err)
			return 1
		}
	case s := <-sig:
		fmt.Fprintf(out, "mesad: %v, draining\n", s)
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(errw, "mesad:", err)
			return 1
		}
	}
	return 0
}

// runSmoke is the -smoke self-test: serve on a loopback port, run the load
// generator twice (cold then warm — warm must be all cache hits), scrape
// /metrics in both JSON and Prometheus form (the latter validated with the
// strict exposition parser), check /healthz and the flight recorder, and
// shut down gracefully. A small kernel subset keeps the smoke brief; the
// full 17×3 matrix runs in the server package's tests.
func runSmoke(srv *server.Server, httpSrv *http.Server, ln net.Listener, tracePath string, out, errw io.Writer) int {
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "mesad: smoke serving on %s\n", base)

	client := &http.Client{Timeout: 120 * time.Second}
	opts := server.LoadOptions{
		Kernels: []string{"nn", "kmeans", "hotspot"},
		Clients: 4,
	}
	for _, label := range []string{"cold", "warm"} {
		stats, err := server.LoadGen(client, base, srv, opts)
		if err != nil {
			fmt.Fprintf(errw, "mesad: smoke %s pass: %v\n", label, err)
			return 1
		}
		fmt.Fprintf(out, "mesad: smoke %s pass: %d requests, %d mismatches\n",
			label, stats.Requests, stats.Mismatches)
	}

	// Batch endpoint: mixed valid/invalid items resolve individually, and
	// every valid item body is byte-identical to the single-request body the
	// load passes above already verified and warmed.
	batchBody := `{"requests":[{"kernel":"nn"},{"kernel":"kmeans","mapper":"congestion"},{"kernel":"no-such-kernel"}]}`
	bres, err := client.Post(base+"/v1/simulate/batch", "application/json", strings.NewReader(batchBody))
	if err != nil {
		fmt.Fprintln(errw, "mesad: smoke batch:", err)
		return 1
	}
	var batch server.BatchResponse
	berr := json.NewDecoder(bres.Body).Decode(&batch)
	bres.Body.Close()
	if berr != nil || bres.StatusCode != http.StatusOK || len(batch.Items) != 3 {
		fmt.Fprintf(errw, "mesad: smoke batch: status %d err %v items %d\n",
			bres.StatusCode, berr, len(batch.Items))
		return 1
	}
	for i, want := range []int{http.StatusOK, http.StatusOK, http.StatusNotFound} {
		if batch.Items[i].Status != want {
			fmt.Fprintf(errw, "mesad: smoke batch item %d: status %d, want %d (body: %s)\n",
				i, batch.Items[i].Status, want, batch.Items[i].Body)
			return 1
		}
	}
	for i, single := range []string{`{"kernel":"nn"}`, `{"kernel":"kmeans","mapper":"congestion"}`} {
		sres, err := client.Post(base+"/v1/simulate", "application/json", strings.NewReader(single))
		if err != nil {
			fmt.Fprintln(errw, "mesad: smoke batch single:", err)
			return 1
		}
		sbody, err := io.ReadAll(sres.Body)
		sres.Body.Close()
		if err != nil || sres.StatusCode != http.StatusOK {
			fmt.Fprintf(errw, "mesad: smoke batch single %d: status %d err %v\n", i, sres.StatusCode, err)
			return 1
		}
		if got := append(append([]byte(nil), batch.Items[i].Body...), '\n'); !bytes.Equal(got, sbody) {
			fmt.Fprintf(errw, "mesad: smoke batch item %d body differs from /v1/simulate\n", i)
			return 1
		}
	}
	fmt.Fprintf(out, "mesad: smoke batch ok (%d items)\n", len(batch.Items))

	metrics, err := client.Get(base + "/metrics")
	if err != nil {
		fmt.Fprintln(errw, "mesad: smoke /metrics:", err)
		return 1
	}
	body, err := io.ReadAll(metrics.Body)
	metrics.Body.Close()
	if err != nil || metrics.StatusCode != http.StatusOK {
		fmt.Fprintf(errw, "mesad: smoke /metrics: status %d err %v\n", metrics.StatusCode, err)
		return 1
	}
	for _, want := range []string{"sim_cache_hits", "admitted", "experiments.pool", "request_seconds_p99"} {
		if !strings.Contains(string(body), want) {
			fmt.Fprintf(errw, "mesad: smoke /metrics missing %q:\n%s\n", want, body)
			return 1
		}
	}
	fmt.Fprintf(out, "mesad: smoke /metrics ok (%d bytes)\n", len(body))

	// Prometheus exposition: content-negotiated, and every line must satisfy
	// the strict parser (histogram monotonicity included).
	promReq, _ := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	promReq.Header.Set("Accept", "text/plain")
	promResp, err := client.Do(promReq)
	if err != nil {
		fmt.Fprintln(errw, "mesad: smoke prometheus /metrics:", err)
		return 1
	}
	promBody, err := io.ReadAll(promResp.Body)
	promResp.Body.Close()
	if err != nil || promResp.StatusCode != http.StatusOK {
		fmt.Fprintf(errw, "mesad: smoke prometheus /metrics: status %d err %v\n", promResp.StatusCode, err)
		return 1
	}
	if ct := promResp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		fmt.Fprintf(errw, "mesad: smoke prometheus /metrics content-type %q\n", ct)
		return 1
	}
	fams, err := obs.ParsePrometheus(promBody)
	if err != nil {
		fmt.Fprintf(errw, "mesad: smoke prometheus exposition malformed: %v\n", err)
		return 1
	}
	reqHist, ok := fams["mesad_request_seconds"]
	if !ok || reqHist.Type != "histogram" {
		fmt.Fprintln(errw, "mesad: smoke prometheus missing mesad_request_seconds histogram")
		return 1
	}
	if c, ok := reqHist.Sample("mesad_request_seconds_count"); !ok || c.Value <= 0 {
		fmt.Fprintln(errw, "mesad: smoke prometheus mesad_request_seconds_count is zero")
		return 1
	}
	fmt.Fprintf(out, "mesad: smoke prometheus ok (%d families)\n", len(fams))

	// Health: a serving process reports ok with its capacity numbers.
	var health struct {
		OK             bool `json:"ok"`
		AdmissionWidth int  `json:"admission_width"`
	}
	hres, err := client.Get(base + "/healthz")
	if err != nil {
		fmt.Fprintln(errw, "mesad: smoke /healthz:", err)
		return 1
	}
	herr := json.NewDecoder(hres.Body).Decode(&health)
	hres.Body.Close()
	if herr != nil || hres.StatusCode != http.StatusOK || !health.OK || health.AdmissionWidth < 1 {
		fmt.Fprintf(errw, "mesad: smoke /healthz: status %d err %v body %+v\n", hres.StatusCode, herr, health)
		return 1
	}

	// Flight recorder: the load passes must have retained slow requests, and
	// their traces must be valid Chrome trace JSON.
	var flights []struct {
		ID        string `json:"id"`
		TracePath string `json:"trace_path"`
	}
	fres, err := client.Get(base + "/debug/requests")
	if err != nil {
		fmt.Fprintln(errw, "mesad: smoke /debug/requests:", err)
		return 1
	}
	ferr := json.NewDecoder(fres.Body).Decode(&flights)
	fres.Body.Close()
	if ferr != nil || fres.StatusCode != http.StatusOK || len(flights) == 0 {
		fmt.Fprintf(errw, "mesad: smoke /debug/requests: status %d err %v entries %d\n",
			fres.StatusCode, ferr, len(flights))
		return 1
	}
	tres, err := client.Get(base + flights[0].TracePath)
	if err != nil {
		fmt.Fprintln(errw, "mesad: smoke trace fetch:", err)
		return 1
	}
	traceBody, err := io.ReadAll(tres.Body)
	tres.Body.Close()
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err != nil || tres.StatusCode != http.StatusOK ||
		json.Unmarshal(traceBody, &trace) != nil || len(trace.TraceEvents) == 0 {
		fmt.Fprintf(errw, "mesad: smoke trace for %s: status %d err %v\n", flights[0].ID, tres.StatusCode, err)
		return 1
	}
	if tracePath != "" {
		if err := os.WriteFile(tracePath, traceBody, 0o644); err != nil {
			fmt.Fprintln(errw, "mesad: smoke trace write:", err)
			return 1
		}
		fmt.Fprintf(out, "mesad: smoke trace for request %s written to %s\n", flights[0].ID, tracePath)
	}
	fmt.Fprintf(out, "mesad: smoke flight recorder ok (%d retained)\n", len(flights))

	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(errw, "mesad:", err)
		return 1
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(errw, "mesad:", err)
		return 1
	}
	fmt.Fprintln(out, "mesad: smoke ok")
	return 0
}
