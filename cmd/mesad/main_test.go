package main

import (
	"bytes"
	"strings"
	"testing"

	"mesa/internal/experiments"
)

// TestRealMainBadFlags: every command-line mistake exits 2 with a diagnostic
// on stderr, through realMain's normal return path (defers run; nothing
// os.Exits mid-function).
func TestRealMainBadFlags(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		frag string
	}{
		{"unknown flag", []string{"-no-such-flag"}, "flag provided but not defined"},
		{"unexpected argument", []string{"extra"}, "unexpected argument"},
		{"unknown mapper", []string{"-mapper", "quantum"}, "quantum"},
		{"negative parallel", []string{"-parallel", "-3"}, "invalid -parallel"},
		{"non-integer cache size", []string{"-cache-size", "many"}, "invalid value"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw bytes.Buffer
			if code := realMain(tc.args, &out, &errw); code != 2 {
				t.Errorf("exit code = %d, want 2 (stderr: %s)", code, errw.String())
			}
			if !strings.Contains(errw.String(), tc.frag) {
				t.Errorf("stderr %q does not mention %q", errw.String(), tc.frag)
			}
		})
	}
}

// TestRealMainBadCacheDir: an unusable -cache-dir is an environment failure
// (exit 1), not a usage error.
func TestRealMainBadCacheDir(t *testing.T) {
	defer experiments.SetSimMemoDir("")
	var out, errw bytes.Buffer
	// A file in /proc cannot be turned into a directory.
	code := realMain([]string{"-cache-dir", "/proc/self/cmdline/store"}, &out, &errw)
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (stderr: %s)", code, errw.String())
	}
	if errw.Len() == 0 {
		t.Error("no diagnostic on stderr")
	}
}

// TestRealMainSmoke runs the full -smoke self-test end to end on a loopback
// port: serve, load-generate cold and warm, scrape /metrics, drain, exit 0.
func TestRealMainSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end smoke in -short mode")
	}
	experiments.ResetSimMemo()
	defer func() {
		experiments.SetSimMemoCapacity(experiments.DefaultSimMemoCapacity)
		experiments.ResetSimMemo()
	}()
	var out, errw bytes.Buffer
	code := realMain([]string{"-smoke", "-cache-dir", t.TempDir()}, &out, &errw)
	if code != 0 {
		t.Fatalf("smoke exit code = %d\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
	for _, want := range []string{"smoke cold pass", "smoke warm pass", "0 mismatches", "smoke ok"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("smoke output missing %q:\n%s", want, out.String())
		}
	}
}
