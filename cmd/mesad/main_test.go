package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mesa/internal/experiments"
)

// TestRealMainBadFlags: every command-line mistake exits 2 with a diagnostic
// on stderr, through realMain's normal return path (defers run; nothing
// os.Exits mid-function).
func TestRealMainBadFlags(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		frag string
	}{
		{"unknown flag", []string{"-no-such-flag"}, "flag provided but not defined"},
		{"unexpected argument", []string{"extra"}, "unexpected argument"},
		{"unknown mapper", []string{"-mapper", "quantum"}, "quantum"},
		{"negative parallel", []string{"-parallel", "-3"}, "invalid -parallel"},
		{"non-integer cache size", []string{"-cache-size", "many"}, "invalid value"},
		{"bad log level", []string{"-log-level", "loud"}, "invalid -log-level"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw bytes.Buffer
			if code := realMain(tc.args, &out, &errw); code != 2 {
				t.Errorf("exit code = %d, want 2 (stderr: %s)", code, errw.String())
			}
			if !strings.Contains(errw.String(), tc.frag) {
				t.Errorf("stderr %q does not mention %q", errw.String(), tc.frag)
			}
		})
	}
}

// TestRealMainBadCacheDir: an unusable -cache-dir is an environment failure
// (exit 1), not a usage error.
func TestRealMainBadCacheDir(t *testing.T) {
	defer experiments.SetSimMemoDir("")
	var out, errw bytes.Buffer
	// A file in /proc cannot be turned into a directory.
	code := realMain([]string{"-cache-dir", "/proc/self/cmdline/store"}, &out, &errw)
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (stderr: %s)", code, errw.String())
	}
	if errw.Len() == 0 {
		t.Error("no diagnostic on stderr")
	}
}

// TestRealMainSmoke runs the full -smoke self-test end to end on a loopback
// port: serve, load-generate cold and warm, scrape /metrics in JSON and
// Prometheus form, check /healthz and the flight recorder, write a trace
// artifact, drain, exit 0.
func TestRealMainSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end smoke in -short mode")
	}
	experiments.ResetSimMemo()
	defer func() {
		experiments.SetSimMemoCapacity(experiments.DefaultSimMemoCapacity)
		experiments.ResetSimMemo()
	}()
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var out, errw bytes.Buffer
	code := realMain([]string{
		"-smoke", "-cache-dir", t.TempDir(),
		"-smoke-trace", tracePath,
		"-debug-addr", "127.0.0.1:0",
		"-log-level", "info",
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("smoke exit code = %d\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
	for _, want := range []string{
		"smoke cold pass", "smoke warm pass", "0 mismatches", "smoke batch ok",
		"smoke prometheus ok", "smoke flight recorder ok", "pprof on", "smoke ok",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("smoke output missing %q:\n%s", want, out.String())
		}
	}
	// The trace artifact is valid Chrome trace JSON with at least one event.
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace artifact: %v", err)
	}
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil || len(trace.TraceEvents) == 0 {
		t.Errorf("trace artifact invalid (err %v, %d events)", err, len(trace.TraceEvents))
	}
	// At -log-level info, the smoke's simulate requests each produced one
	// structured JSON log line on stderr.
	var logLines int
	for _, line := range strings.Split(errw.String(), "\n") {
		if strings.Contains(line, `"route":"/v1/simulate"`) {
			logLines++
			var m map[string]any
			if err := json.Unmarshal([]byte(line), &m); err != nil {
				t.Errorf("log line is not JSON: %q: %v", line, err)
			}
		}
	}
	if logLines == 0 {
		t.Errorf("no structured simulate log lines on stderr:\n%s", errw.String())
	}
}
