module mesa

go 1.22
